//! The time-stepping simulation: fills a block-decomposed structured
//! grid with convolved oscillator values.

use std::sync::Arc;

use datamodel::{dims_create, partition_extent, Extent};
use minimpi::Comm;

use crate::osc::{parse_deck, Oscillator};

/// Simulation configuration (the user-specified parameters of §3.3:
/// grid dimensions, time resolution, duration).
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Global grid points per axis.
    pub grid: [usize; 3],
    /// Physical domain size (the grid spans `[0, domain]³`).
    pub domain: [f64; 3],
    /// Timestep size.
    pub dt: f64,
    /// Number of timesteps.
    pub steps: usize,
    /// Synchronize ranks after every step (off in the paper's runs).
    pub sync_every_step: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            grid: [32, 32, 32],
            domain: [1.0, 1.0, 1.0],
            dt: 0.01,
            steps: 100,
            sync_every_step: false,
        }
    }
}

/// Per-rank simulation state.
pub struct Simulation {
    config: SimConfig,
    oscillators: Vec<Oscillator>,
    /// Local (block) extent.
    local: Extent,
    /// Global extent.
    global: Extent,
    /// Grid spacing per axis.
    spacing: [f64; 3],
    /// The field, shared so the data adaptor can view it zero-copy.
    field: Arc<Vec<f64>>,
    step: u64,
    time: f64,
}

impl Simulation {
    /// Set up the simulation: the deck text is read on rank 0 and
    /// broadcast, the global grid is partitioned by regular
    /// decomposition, and the local field allocated.
    pub fn new(comm: &Comm, config: SimConfig, deck_on_root: Option<&str>) -> Self {
        // Root parses and broadcasts the oscillator set (§3.3: "read and
        // broadcast from the root process").
        let oscillators = if comm.rank() == 0 {
            let deck = deck_on_root.expect("rank 0 must supply the oscillator deck");
            let parsed = parse_deck(deck).unwrap_or_else(|e| panic!("bad deck: {e}"));
            comm.bcast(0, Some(parsed))
        } else {
            comm.bcast(0, None)
        };
        assert!(!oscillators.is_empty(), "need at least one oscillator");

        let global = Extent::whole(config.grid);
        let dims = dims_create(comm.size());
        let local = partition_extent(&global, dims, comm.rank());
        let spacing = [
            config.domain[0] / (config.grid[0].max(2) - 1) as f64,
            config.domain[1] / (config.grid[1].max(2) - 1) as f64,
            config.domain[2] / (config.grid[2].max(2) - 1) as f64,
        ];
        let field = Arc::new(vec![0.0; local.num_points()]);
        Simulation {
            config,
            oscillators,
            local,
            global,
            spacing,
            field,
            step: 0,
            time: 0.0,
        }
    }

    /// Advance one timestep: recompute every local cell as the sum of
    /// the convolved oscillator values at the new time.
    pub fn step(&mut self, comm: &Comm) {
        self.time = self.step as f64 * self.config.dt;
        let t = self.time;
        let oscillators = &self.oscillators;
        let spacing = self.spacing;
        let local = self.local;

        // `make_mut` reuses the allocation when no analysis holds a view
        // (the steady state: adaptors release between steps); if a view
        // is still alive this copies rather than corrupting it.
        let field = Arc::make_mut(&mut self.field);
        let mut idx = 0;
        for p in local.iter_points() {
            let pos = [
                p[0] as f64 * spacing[0],
                p[1] as f64 * spacing[1],
                p[2] as f64 * spacing[2],
            ];
            let mut v = 0.0;
            for o in oscillators {
                v += o.contribution(pos, t);
            }
            field[idx] = v;
            idx += 1;
        }
        self.step += 1;
        if self.config.sync_every_step {
            comm.barrier();
        }
    }

    /// Advance one timestep with **hybrid MPI+thread execution**: the
    /// rank's subgrid fill is data-parallel over an intra-rank thread
    /// pool (rayon), while ranks still exchange via the communicator.
    ///
    /// This is the execution model the paper's Nyx discussion calls for
    /// ("in situ analysis must support hybrid MPI+OpenMP (or other
    /// thread-based) execution models", §4.2.3). Results are bitwise
    /// identical to [`Simulation::step`].
    pub fn step_hybrid(&mut self, comm: &Comm) {
        use rayon::prelude::*;
        self.time = self.step as f64 * self.config.dt;
        let t = self.time;
        let oscillators = &self.oscillators;
        let spacing = self.spacing;
        let local = self.local;
        let field = Arc::make_mut(&mut self.field);
        field
            .par_iter_mut()
            .enumerate()
            .for_each(|(n, cell)| {
                let p = local.point_at(n);
                let pos = [
                    p[0] as f64 * spacing[0],
                    p[1] as f64 * spacing[1],
                    p[2] as f64 * spacing[2],
                ];
                *cell = oscillators.iter().map(|o| o.contribution(pos, t)).sum();
            });
        self.step += 1;
        if self.config.sync_every_step {
            comm.barrier();
        }
    }

    /// Zero-copy handle to the current field.
    pub fn field(&self) -> Arc<Vec<f64>> {
        Arc::clone(&self.field)
    }

    /// Local block extent.
    pub fn local_extent(&self) -> Extent {
        self.local
    }

    /// Global extent.
    pub fn global_extent(&self) -> Extent {
        self.global
    }

    /// Grid spacing.
    pub fn spacing(&self) -> [f64; 3] {
        self.spacing
    }

    /// Completed steps.
    pub fn current_step(&self) -> u64 {
        self.step
    }

    /// Physical time of the last computed step.
    pub fn current_time(&self) -> f64 {
        self.time
    }

    /// Configured total steps.
    pub fn total_steps(&self) -> usize {
        self.config.steps
    }

    /// The oscillator set (after broadcast; identical on all ranks).
    pub fn oscillators(&self) -> &[Oscillator] {
        &self.oscillators
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osc::format_deck;
    use minimpi::World;

    fn deck() -> String {
        format_deck(&crate::demo_oscillators())
    }

    #[test]
    fn broadcast_gives_every_rank_the_deck() {
        let d = deck();
        World::run(4, move |comm| {
            let root_deck = if comm.rank() == 0 { Some(d.as_str()) } else { None };
            let sim = Simulation::new(comm, SimConfig::default(), root_deck);
            assert_eq!(sim.oscillators().len(), 3);
        });
    }

    #[test]
    fn blocks_partition_the_global_grid() {
        let d = deck();
        World::run(8, move |comm| {
            let root_deck = if comm.rank() == 0 { Some(d.as_str()) } else { None };
            let sim = Simulation::new(comm, SimConfig::default(), root_deck);
            let total_cells: usize = comm.allreduce_scalar(sim.local_extent().num_cells(), |a, b| a + b);
            assert_eq!(total_cells, sim.global_extent().num_cells());
        });
    }

    #[test]
    fn field_matches_analytic_sum() {
        let d = deck();
        World::run(2, move |comm| {
            let root_deck = if comm.rank() == 0 { Some(d.as_str()) } else { None };
            let cfg = SimConfig {
                grid: [8, 8, 8],
                steps: 3,
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(comm, cfg, root_deck);
            sim.step(comm);
            sim.step(comm);
            // After 2 steps, time = dt (time of the last computed step).
            let t = sim.current_time();
            assert_eq!(t, 0.01);
            let field = sim.field();
            let local = sim.local_extent();
            let sp = sim.spacing();
            for (i, p) in local.iter_points().enumerate() {
                let pos = [p[0] as f64 * sp[0], p[1] as f64 * sp[1], p[2] as f64 * sp[2]];
                let expect: f64 = sim.oscillators().iter().map(|o| o.contribution(pos, t)).sum();
                assert!((field[i] - expect).abs() < 1e-12);
            }
        });
    }

    #[test]
    fn zero_copy_view_survives_step_without_corruption() {
        let d = deck();
        World::run(1, move |comm| {
            let root_deck = Some(d.as_str());
            let cfg = SimConfig {
                grid: [4, 4, 4],
                steps: 2,
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(comm, cfg, root_deck);
            sim.step(comm);
            let view = sim.field();
            let snapshot: Vec<f64> = view.as_ref().clone();
            sim.step(comm); // copies because `view` is alive
            assert_eq!(&snapshot, view.as_ref(), "held view is immutable");
        });
    }

    #[test]
    fn deterministic_across_rank_counts() {
        // The same global field regardless of decomposition: compare the
        // value at a fixed global point between 1-rank and 4-rank runs.
        let d = deck();
        let probe = [3i64, 5, 2];
        let d1 = d.clone();
        let v1 = World::run(1, move |comm| {
            let cfg = SimConfig { grid: [8, 8, 8], ..SimConfig::default() };
            let mut sim = Simulation::new(comm, cfg, Some(d1.as_str()));
            sim.step(comm);
            sim.field()[sim.local_extent().linear_index(probe)]
        });
        let v4 = World::run(4, move |comm| {
            let root_deck = if comm.rank() == 0 { Some(d.as_str()) } else { None };
            let cfg = SimConfig { grid: [8, 8, 8], ..SimConfig::default() };
            let mut sim = Simulation::new(comm, cfg, root_deck);
            sim.step(comm);
            if sim.local_extent().contains(probe) {
                Some(sim.field()[sim.local_extent().linear_index(probe)])
            } else {
                None
            }
        });
        let hits: Vec<f64> = v4.into_iter().flatten().collect();
        assert!(!hits.is_empty());
        for h in hits {
            assert_eq!(h, v1[0]);
        }
    }

    #[test]
    fn hybrid_step_is_bitwise_identical() {
        // The §4.2.3 extension: intra-rank thread parallelism must not
        // change results.
        let d = deck();
        World::run(2, move |comm| {
            let root_deck = if comm.rank() == 0 { Some(d.as_str()) } else { None };
            let cfg = SimConfig {
                grid: [12, 12, 12],
                steps: 3,
                ..SimConfig::default()
            };
            let mut serial = Simulation::new(comm, cfg.clone(), root_deck);
            let root_deck2 = if comm.rank() == 0 { Some(d.as_str()) } else { None };
            let mut hybrid = Simulation::new(comm, cfg, root_deck2);
            for _ in 0..3 {
                serial.step(comm);
                hybrid.step_hybrid(comm);
            }
            assert_eq!(serial.field().as_ref(), hybrid.field().as_ref());
            assert_eq!(serial.current_time(), hybrid.current_time());
        });
    }

    #[test]
    #[should_panic(expected = "rank 0 must supply")]
    fn missing_deck_on_root_panics() {
        World::run(1, |comm| {
            let _ = Simulation::new(comm, SimConfig::default(), None);
        });
    }
}
