//! # oscillator — the miniapplication of §3.3
//!
//! A lightweight proxy data source: a collection of periodic, damped, or
//! decaying [`Oscillator`]s placed in a 3D domain, each convolved with a
//! Gaussian of prescribed width. The global grid is partitioned across
//! ranks by regular decomposition; every timestep each rank fills its
//! subgrid with the sum of the convolved oscillator values —
//! `O(m · N³)` work per rank, embarrassingly parallel, with optional
//! per-step synchronization (off by default, as in the paper's runs).
//!
//! The [`adaptor::OscillatorAdaptor`] exposes the field **zero-copy**
//! through the SENSEI data adaptor API: both the miniapp and the
//! analyses work on structured grids, so no mapping work is needed —
//! the property behind the "no measurable difference" result of
//! Figs. 3–4.

pub mod adaptor;
pub mod osc;
pub mod sim;

pub use adaptor::OscillatorAdaptor;
pub use osc::{format_deck, parse_deck, Oscillator, OscillatorKind, ParseError};
pub use sim::{SimConfig, Simulation};

/// The standard demo oscillator set used across examples and tests —
/// three oscillators (one of each kind) in the unit cube, mirroring the
/// miniapp's sample input deck.
pub fn demo_oscillators() -> Vec<Oscillator> {
    vec![
        Oscillator {
            kind: OscillatorKind::Periodic,
            center: [0.3, 0.3, 0.5],
            radius: 0.2,
            omega: 2.0 * std::f64::consts::PI,
            zeta: 0.0,
        },
        Oscillator {
            kind: OscillatorKind::Damped,
            center: [0.7, 0.7, 0.3],
            radius: 0.25,
            omega: 4.0 * std::f64::consts::PI,
            zeta: 0.1,
        },
        Oscillator {
            kind: OscillatorKind::Decaying,
            center: [0.5, 0.2, 0.8],
            radius: 0.15,
            omega: 1.0,
            zeta: 0.0,
        },
    ]
}
