//! # sensei — the generic in situ data interface (the paper's §3.2)
//!
//! SENSEI decouples *what a simulation produces* from *which in situ
//! infrastructure consumes it* with three small pieces:
//!
//! * the **data adaptor** ([`DataAdaptor`]) maps simulation data
//!   structures into the shared data model (`datamodel`), lazily — when
//!   no analysis is enabled nothing is mapped, so instrumentation
//!   overhead is almost nonexistent;
//! * the **analysis adaptor** ([`AnalysisAdaptor`]) wraps any analysis —
//!   a histogram, an autocorrelation, or an entire infrastructure such as
//!   Catalyst, Libsim, ADIOS, or GLEAN — behind one `execute` call;
//! * the **bridge** ([`Bridge`]) is the thin mechanism a simulation calls
//!   once per timestep to pass data and control to the enabled analyses,
//!   and which instruments one-time (initialize/finalize) and per-step
//!   costs — the measurements behind Figs. 3–9.
//!
//! *Write once, use everywhere*: a simulation instrumented with a
//! [`DataAdaptor`] can drive any analysis; an analysis written against
//! the data model runs under any infrastructure crate in this workspace.
//!
//! ```
//! use minimpi::World;
//! use sensei::{Bridge, InMemoryAdaptor};
//! use sensei::analysis::histogram::HistogramAnalysis;
//! use datamodel::{DataArray, DataSet, Extent, ImageData};
//!
//! World::run(4, |comm| {
//!     // Each rank owns 8 cells of a 32-cell global field.
//!     let e = Extent::whole([9, 2, 2]);
//!     let local = datamodel::partition_extent(&e, [4, 1, 1], comm.rank());
//!     let mut grid = ImageData::new(local, e);
//!     let vals: Vec<f64> = (0..grid.num_points())
//!         .map(|i| (comm.rank() * 100 + i) as f64)
//!         .collect();
//!     grid.add_point_array(DataArray::owned("data", 1, vals));
//!
//!     let hist = HistogramAnalysis::new("data", 8);
//!     let results = hist.results_handle();
//!     let mut bridge = Bridge::new();
//!     bridge.register(Box::new(hist));
//!
//!     let adaptor = InMemoryAdaptor::new(DataSet::Image(grid), 0.0, 0);
//!     assert!(bridge.execute(&adaptor, comm).should_continue());
//!     let report = bridge.finalize(comm);
//!     assert_eq!(report.steps, 1);
//!
//!     if comm.rank() == 0 {
//!         let h = results.lock().clone().expect("histogram on root");
//!         // 4 blocks × (3×2×2 points, incl. shared planes) = 48 values.
//!         assert_eq!(h.counts.iter().sum::<u64>(), 48);
//!         // The run report carries the per-phase breakdown.
//!         assert!(report.phase("per-step/histogram").is_some());
//!     }
//! });
//! ```

pub mod adaptor;
pub mod analysis;
pub mod bridge;
pub mod config;
pub mod exec;
pub mod failure;
pub mod timing;

pub use adaptor::{AdaptorError, Association, DataAdaptor, InMemoryAdaptor};
pub use analysis::{AnalysisAdaptor, Steering};
pub use bridge::{Bridge, OffloadConfig, Registration, StopInfo};
pub use failure::FailureReport;
pub use timing::{TimingDb, TimingSummary};

// Re-exported so downstream crates can consume run reports without
// depending on `probe` directly.
pub use probe::{Probe, RunReport, Snapshot};
