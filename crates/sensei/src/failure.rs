//! Unified non-fatal failure reporting.
//!
//! Before this module every degraded-pipeline event had its own shape:
//! the FlexPath reader's `DeadWriter`, GLEAN's `DeadMember`, the staging
//! broker's `EvictionRecord`, and free-form strings from analyses. They
//! all funnel into one [`FailureReport`] enum behind
//! [`Bridge::failure_reports`], so every consumer — tests, the
//! `RunReport` JSON, live monitors — sees a single machine-readable
//! shape with a `kind` tag, while `From` impls in the endpoint crates
//! keep call sites as small as `bridge.record_failure(evicted)`.
//!
//! [`Bridge::failure_reports`]: crate::bridge::Bridge::failure_reports

use std::time::Duration;

/// One non-fatal infrastructure failure. The run continues past any of
/// these; surfacing them is what keeps a degraded pipeline from being
/// mistaken for a healthy one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureReport {
    /// A staging writer went silent mid-stream (FlexPath reader side):
    /// its stream was drained to end-of-stream instead of hanging the
    /// endpoint.
    DeadWriter {
        /// World rank of the lost writer.
        rank: usize,
        /// Steps fully received before the loss.
        steps_received: u64,
        /// Payload bytes received before the loss.
        bytes_received: u64,
        /// How long the reader waited before declaring it dead.
        waited: Duration,
    },
    /// A node member never delivered its block within the aggregation
    /// deadline (GLEAN): the aggregator proceeds without it.
    DeadMember {
        /// World rank of the silent member.
        rank: usize,
        /// Steps received from it before it went silent.
        steps_received: u64,
        /// How long the aggregator waited before declaring it dead.
        waited: Duration,
    },
    /// A slow consumer was evicted from a staging-broker topic so the
    /// producers could keep publishing.
    Eviction {
        /// Consumer identity: its label, or `client N` if unlabeled.
        consumer: String,
        /// Topic it was evicted from.
        topic: String,
        /// Messages delivered into its queue before eviction.
        delivered: u64,
        /// Messages it actually drained before eviction.
        consumed: u64,
        /// Sequence number of the publish that evicted it.
        dropped_seq: u64,
        /// How long the dispatcher waited for the queue to drain.
        waited: Duration,
    },
    /// An interactive steering client stopped responding: the query
    /// server stops waiting for its commands at step boundaries and the
    /// run degrades to run-to-completion instead of blocking.
    DeadSteering {
        /// Interactive client id.
        client: u64,
        /// Bridge step at which the client was declared dead.
        step: u64,
        /// Bridge steps the server waited before giving up.
        waited_steps: u64,
    },
    /// An analysis adaptor reported a failure string through
    /// `AnalysisAdaptor::take_failures`.
    Analysis {
        /// Name of the reporting analysis.
        analysis: String,
        /// Its failure description.
        detail: String,
    },
    /// Anything else (free-form `record_failure` strings).
    Other {
        /// Failure description.
        detail: String,
    },
}

impl FailureReport {
    /// Machine-readable kind tag, stable across releases (the `kind`
    /// field of the RunReport JSON failure entries).
    pub fn kind(&self) -> &'static str {
        match self {
            FailureReport::DeadWriter { .. } => "dead-writer",
            FailureReport::DeadMember { .. } => "dead-member",
            FailureReport::Eviction { .. } => "eviction",
            FailureReport::DeadSteering { .. } => "dead-steering",
            FailureReport::Analysis { .. } => "analysis",
            FailureReport::Other { .. } => "other",
        }
    }
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureReport::DeadWriter {
                rank,
                steps_received,
                bytes_received,
                waited,
            } => write!(
                f,
                "writer rank {rank} lost in transit after {steps_received} step(s) / \
                 {bytes_received} payload byte(s) received (no frame within {waited:?}); \
                 its stream was drained to end-of-stream"
            ),
            FailureReport::DeadMember {
                rank,
                steps_received,
                waited,
            } => write!(
                f,
                "node member rank {rank} lost after {steps_received} step(s) (no block \
                 within {waited:?}); aggregating without it"
            ),
            FailureReport::Eviction {
                consumer,
                topic,
                delivered,
                consumed,
                dropped_seq,
                waited,
            } => write!(
                f,
                "broker evicted slow consumer {consumer} from topic {topic}: queue full \
                 at seq {dropped_seq} after {waited:?} (delivered {delivered}, consumed \
                 {consumed})"
            ),
            FailureReport::DeadSteering {
                client,
                step,
                waited_steps,
            } => write!(
                f,
                "steering client {client} unresponsive at step {step} (no command for \
                 {waited_steps} step(s)); running to completion without it"
            ),
            FailureReport::Analysis { analysis, detail } => write!(f, "{analysis}: {detail}"),
            FailureReport::Other { detail } => f.write_str(detail),
        }
    }
}

impl From<String> for FailureReport {
    fn from(detail: String) -> Self {
        FailureReport::Other { detail }
    }
}

impl From<&str> for FailureReport {
    fn from(detail: &str) -> Self {
        FailureReport::Other {
            detail: detail.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_stable() {
        let reports = [
            FailureReport::DeadWriter {
                rank: 3,
                steps_received: 2,
                bytes_received: 640,
                waited: Duration::from_millis(150),
            },
            FailureReport::DeadMember {
                rank: 5,
                steps_received: 1,
                waited: Duration::from_millis(50),
            },
            FailureReport::Eviction {
                consumer: "stall-00".into(),
                topic: "data#0".into(),
                delivered: 8,
                consumed: 2,
                dropped_seq: 9,
                waited: Duration::from_millis(20),
            },
            FailureReport::DeadSteering {
                client: 7,
                step: 12,
                waited_steps: 3,
            },
            FailureReport::Analysis {
                analysis: "histogram".into(),
                detail: "unknown point array 'data'".into(),
            },
            FailureReport::Other {
                detail: "free-form".into(),
            },
        ];
        let kinds: Vec<&str> = reports.iter().map(|r| r.kind()).collect();
        assert_eq!(
            kinds,
            [
                "dead-writer",
                "dead-member",
                "eviction",
                "dead-steering",
                "analysis",
                "other"
            ]
        );
    }

    #[test]
    fn descriptions_carry_the_forensics() {
        let r = FailureReport::DeadWriter {
            rank: 0,
            steps_received: 2,
            bytes_received: 96,
            waited: Duration::from_millis(150),
        };
        let s = r.to_string();
        assert!(s.contains("writer rank 0"), "{s}");
        assert!(s.contains("2 step(s)"), "{s}");
        assert!(s.contains("end-of-stream"), "{s}");
    }

    #[test]
    fn strings_convert_to_other() {
        let r: FailureReport = "drain thread panicked".into();
        assert_eq!(r.kind(), "other");
        assert_eq!(r.to_string(), "drain thread panicked");
    }
}
