//! Minimal configuration format for selecting analyses at run time,
//! playing the role of SENSEI's XML configuration files (which choose
//! between Catalyst, Libsim, ADIOS, … without recompiling).
//!
//! The format is INI-like:
//!
//! ```text
//! [histogram]
//! array = data
//! bins = 64
//!
//! [autocorrelation]
//! array = data
//! window = 10
//! k = 16
//! ```
//!
//! Sections this crate knows (`histogram`, `autocorrelation`,
//! `descriptive-stats`) construct built-in analyses via
//! [`build_builtin_analyses`]; infrastructure crates parse the same
//! [`Config`] and construct their own adaptors from sections such as
//! `[catalyst-slice]`.

use std::collections::BTreeMap;

use crate::analysis::autocorrelation::Autocorrelation;
use crate::analysis::descriptive::DescriptiveStats;
use crate::analysis::histogram::HistogramAnalysis;
use crate::analysis::AnalysisAdaptor;

/// A parsed configuration: ordered sections of key→value maps.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Config {
    sections: Vec<(String, BTreeMap<String, String>)>,
}

/// Configuration parse errors.
#[derive(Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A `key = value` line appeared before any `[section]`.
    KeyOutsideSection { line: usize },
    /// A line was neither a section, a comment, a blank, nor `key = value`.
    Malformed { line: usize, text: String },
    /// A numeric option failed to parse.
    BadNumber {
        section: String,
        key: String,
        value: String,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::KeyOutsideSection { line } => {
                write!(f, "line {line}: key/value outside any [section]")
            }
            ConfigError::Malformed { line, text } => {
                write!(f, "line {line}: malformed line '{text}'")
            }
            ConfigError::BadNumber {
                section,
                key,
                value,
            } => {
                write!(f, "[{section}] {key} = '{value}' is not a number")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parse the INI-like text.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                cfg.sections
                    .push((name.trim().to_string(), BTreeMap::new()));
            } else if let Some((k, v)) = line.split_once('=') {
                let Some(last) = cfg.sections.last_mut() else {
                    return Err(ConfigError::KeyOutsideSection { line: lineno + 1 });
                };
                last.1.insert(k.trim().to_string(), v.trim().to_string());
            } else {
                return Err(ConfigError::Malformed {
                    line: lineno + 1,
                    text: line.to_string(),
                });
            }
        }
        Ok(cfg)
    }

    /// Iterate sections in file order.
    pub fn sections(&self) -> impl Iterator<Item = (&str, &BTreeMap<String, String>)> {
        self.sections.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// First section with the given name.
    pub fn section(&self, name: &str) -> Option<&BTreeMap<String, String>> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, m)| m)
    }

    /// String option with default.
    pub fn get_str<'a>(map: &'a BTreeMap<String, String>, key: &str, default: &'a str) -> &'a str {
        map.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Numeric option with default.
    pub fn get_usize(
        section: &str,
        map: &BTreeMap<String, String>,
        key: &str,
        default: usize,
    ) -> Result<usize, ConfigError> {
        match map.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ConfigError::BadNumber {
                section: section.to_string(),
                key: key.to_string(),
                value: v.clone(),
            }),
        }
    }
}

/// The analyses a config names, plus the section names nobody claimed.
pub type BuiltinAnalyses = (Vec<Box<dyn AnalysisAdaptor>>, Vec<String>);

/// Construct the built-in analyses named by `cfg`. Unknown sections are
/// returned so an infrastructure layer can claim them.
pub fn build_builtin_analyses(cfg: &Config) -> Result<BuiltinAnalyses, ConfigError> {
    let mut analyses: Vec<Box<dyn AnalysisAdaptor>> = Vec::new();
    let mut unknown = Vec::new();
    for (name, map) in cfg.sections() {
        match name {
            "histogram" => {
                let array = Config::get_str(map, "array", "data").to_string();
                let bins = Config::get_usize(name, map, "bins", 64)?;
                analyses.push(Box::new(HistogramAnalysis::new(array, bins)));
            }
            "autocorrelation" => {
                let array = Config::get_str(map, "array", "data").to_string();
                let window = Config::get_usize(name, map, "window", 10)?;
                let k = Config::get_usize(name, map, "k", 16)?;
                analyses.push(Box::new(Autocorrelation::new(array, window, k)));
            }
            "descriptive-stats" => {
                let array = Config::get_str(map, "array", "data").to_string();
                analyses.push(Box::new(DescriptiveStats::new(array)));
            }
            other => unknown.push(other.to_string()),
        }
    }
    Ok((analyses, unknown))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_sections_and_keys() {
        let cfg = Config::parse(
            "# comment\n[histogram]\narray = rho\nbins = 32\n\n[catalyst-slice]\nimage = 1920x1080\n",
        )
        .unwrap();
        assert_eq!(cfg.sections().count(), 2);
        let h = cfg.section("histogram").unwrap();
        assert_eq!(h.get("array").unwrap(), "rho");
        assert_eq!(Config::get_usize("histogram", h, "bins", 64).unwrap(), 32);
        assert_eq!(
            Config::get_usize("histogram", h, "missing", 64).unwrap(),
            64
        );
    }

    #[test]
    fn builtin_construction_and_unknown_passthrough() {
        let cfg = Config::parse(
            "[histogram]\nbins=8\n[autocorrelation]\nwindow=4\n[catalyst-slice]\n[descriptive-stats]\n",
        )
        .unwrap();
        let (analyses, unknown) = build_builtin_analyses(&cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(analyses.len(), 3);
        assert_eq!(unknown, vec!["catalyst-slice".to_string()]);
    }

    #[test]
    fn error_on_key_outside_section() {
        let err = Config::parse("array = x\n").unwrap_err();
        assert_eq!(err, ConfigError::KeyOutsideSection { line: 1 });
    }

    #[test]
    fn error_on_malformed_line() {
        let err = Config::parse("[s]\nnot a kv line\n").unwrap_err();
        assert!(matches!(err, ConfigError::Malformed { line: 2, .. }));
    }

    #[test]
    fn error_on_bad_number() {
        let cfg = Config::parse("[histogram]\nbins = many\n").unwrap();
        let err = match build_builtin_analyses(&cfg) {
            Err(e) => e,
            Ok(_) => panic!("expected BadNumber error"),
        };
        assert!(matches!(err, ConfigError::BadNumber { .. }));
        assert!(format!("{err}").contains("bins"));
    }

    #[test]
    fn semicolon_comments_and_whitespace() {
        let cfg = Config::parse("; c\n  [ s ]  \n  a  =  1 2 3  \n").unwrap();
        assert_eq!(cfg.section("s").unwrap().get("a").unwrap(), "1 2 3");
    }
}
