//! Timing instrumentation: the measurement layer behind the paper's
//! one-time vs. per-timestep cost decomposition (Figs. 5, 6, 8, 16).

use std::collections::BTreeMap;

/// Category of a recorded duration.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Category {
    /// One-time startup cost under the given label.
    Initialize(String),
    /// Recurring per-timestep cost under the given label.
    PerStep(String),
    /// One-time teardown cost under the given label.
    Finalize(String),
}

/// Aggregate statistics for one label.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingSummary {
    /// Number of samples.
    pub count: usize,
    /// Sum of samples, seconds.
    pub total: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Population standard deviation over samples (0 for fewer than
    /// two). Consumers like `perfmodel`'s noise models read the
    /// per-step timing spread from here.
    pub stddev: f64,
}

impl TimingSummary {
    /// Mean seconds per sample.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }

    /// Coefficient of variation (stddev / mean; 0 when the mean is 0).
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m > 0.0 {
            self.stddev / m
        } else {
            0.0
        }
    }
}

/// A per-rank database of labeled durations.
#[derive(Default, Debug)]
pub struct TimingDb {
    samples: BTreeMap<Category, Vec<f64>>,
}

impl TimingDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `seconds` under `cat`.
    pub fn record(&mut self, cat: Category, seconds: f64) {
        assert!(
            seconds >= 0.0 && seconds.is_finite(),
            "bad duration {seconds}"
        );
        self.samples.entry(cat).or_default().push(seconds);
    }

    /// Time the closure and record it under `cat`, returning its value.
    /// Reads [`probe::time`], so scheduled (virtual-time) ranks record
    /// deterministic durations.
    pub fn timed<T>(&mut self, cat: Category, f: impl FnOnce() -> T) -> T {
        let t0 = probe::time::now_seconds();
        let out = f();
        self.record(cat, (probe::time::now_seconds() - t0).max(0.0));
        out
    }

    /// Summary for one category, if recorded.
    pub fn summary(&self, cat: &Category) -> Option<TimingSummary> {
        let v = self.samples.get(cat)?;
        if v.is_empty() {
            return None;
        }
        // One Welford pass for the spread (numerically stable even when
        // samples cluster far from zero).
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        for (i, &x) in v.iter().enumerate() {
            let d = x - mean;
            mean += d / (i + 1) as f64;
            m2 += d * (x - mean);
        }
        let stddev = if v.len() < 2 {
            0.0
        } else {
            (m2 / v.len() as f64).max(0.0).sqrt()
        };
        Some(TimingSummary {
            count: v.len(),
            total: v.iter().sum(),
            min: v.iter().cloned().fold(f64::INFINITY, f64::min),
            max: v.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            stddev,
        })
    }

    /// Per-step summary for a label.
    pub fn per_step(&self, label: &str) -> Option<TimingSummary> {
        self.summary(&Category::PerStep(label.to_string()))
    }

    /// Initialize summary for a label.
    pub fn initialize(&self, label: &str) -> Option<TimingSummary> {
        self.summary(&Category::Initialize(label.to_string()))
    }

    /// Finalize summary for a label.
    pub fn finalize(&self, label: &str) -> Option<TimingSummary> {
        self.summary(&Category::Finalize(label.to_string()))
    }

    /// All recorded categories in sorted order.
    pub fn categories(&self) -> Vec<&Category> {
        self.samples.keys().collect()
    }

    /// Raw samples for a category (chronological).
    pub fn samples(&self, cat: &Category) -> &[f64] {
        self.samples.get(cat).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total seconds across every category.
    pub fn grand_total(&self) -> f64 {
        self.samples.values().flatten().sum()
    }
}

impl std::fmt::Display for TimingDb {
    /// A per-rank report in the paper's decomposition: one-time costs
    /// first, then per-step means, then finalize.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<32} {:>10} {:>12} {:>12}",
            "phase", "samples", "mean (s)", "total (s)"
        )?;
        for cat in self.categories() {
            let label = match cat {
                Category::Initialize(l) => format!("initialize/{l}"),
                Category::PerStep(l) => format!("per-step/{l}"),
                Category::Finalize(l) => format!("finalize/{l}"),
            };
            if let Some(s) = self.summary(cat) {
                writeln!(
                    f,
                    "{label:<32} {:>10} {:>12.6} {:>12.6}",
                    s.count,
                    s.mean(),
                    s.total
                )?;
            }
        }
        write!(f, "grand total: {:.6} s", self.grand_total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_summarize() {
        let mut db = TimingDb::new();
        let cat = Category::PerStep("analysis".into());
        db.record(cat.clone(), 1.0);
        db.record(cat.clone(), 3.0);
        let s = db.summary(&cat).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total, 4.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean(), 2.0);
        // Population stddev of {1, 3} is 1.
        assert_eq!(s.stddev, 1.0);
        assert_eq!(s.cv(), 0.5);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let mut db = TimingDb::new();
        let cat = Category::Initialize("one".into());
        db.record(cat.clone(), 2.5);
        let s = db.summary(&cat).unwrap();
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn timed_measures_something() {
        let mut db = TimingDb::new();
        let v = db.timed(Category::Initialize("x".into()), || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        let s = db.initialize("x").unwrap();
        assert!(s.total >= 0.004, "measured {}", s.total);
    }

    #[test]
    fn missing_category_is_none() {
        let db = TimingDb::new();
        assert!(db.per_step("none").is_none());
        assert!(db.samples(&Category::PerStep("none".into())).is_empty());
    }

    #[test]
    fn categories_sorted_and_distinct() {
        let mut db = TimingDb::new();
        db.record(Category::Finalize("a".into()), 0.1);
        db.record(Category::Initialize("a".into()), 0.1);
        db.record(Category::PerStep("a".into()), 0.1);
        assert_eq!(db.categories().len(), 3);
        // Sum of three 0.1 samples in f64; compare with a tolerance, not
        // against one particular rounding of the accumulation order.
        assert!((db.grand_total() - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bad duration")]
    fn negative_duration_rejected() {
        TimingDb::new().record(Category::PerStep("x".into()), -1.0);
    }

    #[test]
    fn display_report_lists_phases() {
        let mut db = TimingDb::new();
        db.record(Category::Initialize("catalyst-slice".into()), 0.5);
        db.record(Category::PerStep("catalyst-slice".into()), 0.1);
        db.record(Category::PerStep("catalyst-slice".into()), 0.3);
        let report = format!("{db}");
        assert!(report.contains("initialize/catalyst-slice"));
        assert!(report.contains("per-step/catalyst-slice"));
        assert!(report.contains("grand total: 0.9"));
    }
}
