//! The data adaptor: the simulation-side half of the SENSEI interface.

use datamodel::DataSet;

/// Whether an array lives on points or cells.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Association {
    /// Node-centered data.
    Point,
    /// Cell-centered data.
    Cell,
}

/// Simulation-side adaptor: maps the simulation's native structures into
/// the shared data model **on demand**.
///
/// Implementations should be lazy and zero-copy: [`DataAdaptor::mesh`]
/// returns structure only; arrays are attached when an analysis asks for
/// them via [`DataAdaptor::add_array`]. When no analysis is enabled the
/// bridge never calls either, so instrumentation overhead is near zero
/// (the paper's §3.2 design point).
pub trait DataAdaptor {
    /// Simulated physical time of the current step.
    fn time(&self) -> f64;

    /// Current timestep index.
    fn step(&self) -> u64;

    /// The mesh **structure** (no attribute arrays).
    fn mesh(&self) -> DataSet;

    /// Names of arrays the simulation can provide for `assoc`.
    fn array_names(&self, assoc: Association) -> Vec<String>;

    /// Attach the named array to `mesh` (zero-copy when layouts allow).
    /// Returns `false` when the array is unknown.
    fn add_array(&self, mesh: &mut DataSet, assoc: Association, name: &str) -> bool;

    /// Convenience: mesh with every available point and cell array
    /// attached. Infrastructures that snapshot everything (ADIOS, I/O)
    /// use this; targeted analyses should pull only what they need.
    fn full_mesh(&self) -> DataSet {
        let mut mesh = self.mesh();
        for assoc in [Association::Point, Association::Cell] {
            for name in self.array_names(assoc) {
                let ok = self.add_array(&mut mesh, assoc, &name);
                debug_assert!(ok, "advertised array '{name}' was not provided");
            }
        }
        mesh
    }

    /// Release references to simulation data after the bridge finishes a
    /// step. Default: nothing (adaptors built per step need no release).
    fn release_data(&self) {}
}

/// A ready-made adaptor wrapping an already-constructed [`DataSet`]:
/// used by tests, examples, and the endpoint side of staging transports
/// (which receive materialized data rather than live simulation state).
pub struct InMemoryAdaptor {
    data: DataSet,
    time: f64,
    step: u64,
}

impl InMemoryAdaptor {
    /// Wrap `data` at the given time/step.
    pub fn new(data: DataSet, time: f64, step: u64) -> Self {
        InMemoryAdaptor { data, time, step }
    }

    /// Access the wrapped dataset.
    pub fn data(&self) -> &DataSet {
        &self.data
    }
}

impl DataAdaptor for InMemoryAdaptor {
    fn time(&self) -> f64 {
        self.time
    }

    fn step(&self) -> u64 {
        self.step
    }

    fn mesh(&self) -> DataSet {
        // Structure only: strip attributes.
        fn strip(ds: &DataSet) -> DataSet {
            match ds {
                DataSet::Image(g) => {
                    let mut g = g.clone();
                    g.point_data = datamodel::Attributes::new();
                    g.cell_data = datamodel::Attributes::new();
                    DataSet::Image(g)
                }
                DataSet::Rectilinear(g) => {
                    let mut g = g.clone();
                    g.point_data = datamodel::Attributes::new();
                    g.cell_data = datamodel::Attributes::new();
                    DataSet::Rectilinear(g)
                }
                DataSet::Unstructured(g) => {
                    let mut g = g.clone();
                    g.point_data = datamodel::Attributes::new();
                    g.cell_data = datamodel::Attributes::new();
                    DataSet::Unstructured(g)
                }
                DataSet::Multi(m) => {
                    let mut out = datamodel::MultiBlock::with_slots(m.num_slots());
                    for i in 0..m.num_slots() {
                        if let Some(b) = m.block(i) {
                            out.set(i, strip(b));
                        }
                    }
                    DataSet::Multi(out)
                }
            }
        }
        strip(&self.data)
    }

    fn array_names(&self, assoc: Association) -> Vec<String> {
        let attrs = match assoc {
            Association::Point => self.data.point_data(),
            Association::Cell => self.data.cell_data(),
        };
        attrs
            .map(|a| a.names().into_iter().map(String::from).collect())
            .unwrap_or_default()
    }

    fn add_array(&self, mesh: &mut DataSet, assoc: Association, name: &str) -> bool {
        let src = match assoc {
            Association::Point => self.data.point_data(),
            Association::Cell => self.data.cell_data(),
        };
        let Some(array) = src.and_then(|a| a.get(name)) else {
            return false;
        };
        // Clone is cheap for shared (zero-copy) buffers: it bumps a
        // refcount per buffer rather than copying elements.
        let array = array.clone();
        match (mesh, assoc) {
            (DataSet::Image(g), Association::Point) => g.point_data.insert(array),
            (DataSet::Image(g), Association::Cell) => g.cell_data.insert(array),
            (DataSet::Rectilinear(g), Association::Point) => g.point_data.insert(array),
            (DataSet::Rectilinear(g), Association::Cell) => g.cell_data.insert(array),
            (DataSet::Unstructured(g), Association::Point) => g.point_data.insert(array),
            (DataSet::Unstructured(g), Association::Cell) => g.cell_data.insert(array),
            (DataSet::Multi(_), _) => return false,
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamodel::{DataArray, Extent, ImageData};
    use std::sync::Arc;

    fn sample() -> InMemoryAdaptor {
        let e = Extent::whole([3, 3, 3]);
        let mut g = ImageData::new(e, e);
        g.add_point_array(DataArray::shared(
            "data",
            1,
            Arc::new((0..27).map(|i| i as f64).collect()),
        ));
        g.add_cell_array(DataArray::owned("rho", 1, vec![1.0f64; 8]));
        InMemoryAdaptor::new(DataSet::Image(g), 1.5, 3)
    }

    #[test]
    fn mesh_is_structure_only() {
        let a = sample();
        let mesh = a.mesh();
        assert_eq!(mesh.point_data().unwrap().len(), 0);
        assert_eq!(mesh.cell_data().unwrap().len(), 0);
        assert_eq!(mesh.num_points(), 27);
    }

    #[test]
    fn lazy_array_attachment() {
        let a = sample();
        let mut mesh = a.mesh();
        assert!(a.add_array(&mut mesh, Association::Point, "data"));
        assert_eq!(mesh.point_data().unwrap().len(), 1);
        assert!(!a.add_array(&mut mesh, Association::Point, "nope"));
    }

    #[test]
    fn attached_array_stays_zero_copy() {
        let a = sample();
        let mut mesh = a.mesh();
        a.add_array(&mut mesh, Association::Point, "data");
        assert!(mesh
            .point_data()
            .unwrap()
            .get("data")
            .unwrap()
            .is_zero_copy());
    }

    #[test]
    fn full_mesh_has_everything() {
        let a = sample();
        let m = a.full_mesh();
        assert_eq!(m.point_data().unwrap().len(), 1);
        assert_eq!(m.cell_data().unwrap().len(), 1);
        assert_eq!(a.time(), 1.5);
        assert_eq!(a.step(), 3);
    }

    #[test]
    fn array_names_by_association() {
        let a = sample();
        assert_eq!(a.array_names(Association::Point), vec!["data".to_string()]);
        assert_eq!(a.array_names(Association::Cell), vec!["rho".to_string()]);
    }
}
