//! The data adaptor: the simulation-side half of the SENSEI interface.

use datamodel::DataSet;

/// Whether an array lives on points or cells.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Association {
    /// Node-centered data.
    Point,
    /// Cell-centered data.
    Cell,
}

impl Association {
    /// The other association.
    pub fn other(self) -> Self {
        match self {
            Association::Point => Association::Cell,
            Association::Cell => Association::Point,
        }
    }
}

impl std::fmt::Display for Association {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Association::Point => write!(f, "point"),
            Association::Cell => write!(f, "cell"),
        }
    }
}

/// Why a data adaptor could not attach an array
/// ([`DataAdaptor::add_array`]).
///
/// The variants separate "you asked for something I don't have"
/// ([`AdaptorError::UnknownArray`]) from "you asked the wrong way"
/// ([`AdaptorError::WrongAssociation`]) from "I have it but cannot
/// express it on that mesh" ([`AdaptorError::LayoutUnsupported`]), so
/// infrastructures can report *why* a field went missing instead of
/// silently skipping it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdaptorError {
    /// No array of this name exists under the requested association.
    UnknownArray {
        /// Requested array name.
        name: String,
        /// Requested association.
        assoc: Association,
    },
    /// The array exists, but under the other association.
    WrongAssociation {
        /// Requested array name.
        name: String,
        /// Association the caller asked for.
        requested: Association,
        /// Association the adaptor actually provides the array under.
        available: Association,
    },
    /// The adaptor cannot attach this array to the given mesh layout
    /// (e.g. a leaf array pushed at a multiblock root).
    LayoutUnsupported {
        /// Requested array name.
        name: String,
        /// What about the layout was unsupported.
        detail: String,
    },
    /// The array exists but its bytes live in a different memory space
    /// than the executing code, and no explicit transfer
    /// (`move_to`/`snapshot_in`) was made. Raised through
    /// [`datamodel::AccessError`] by the space-checked accessors.
    WrongSpace {
        /// Requested array name.
        name: String,
        /// Space the array's bytes live in.
        have: String,
        /// Space the accessing code executes in.
        want: String,
    },
}

impl From<datamodel::AccessError> for AdaptorError {
    fn from(err: datamodel::AccessError) -> Self {
        match err {
            datamodel::AccessError::WrongSpace { array, have, want } => AdaptorError::WrongSpace {
                name: array,
                have: have.to_string(),
                want: want.to_string(),
            },
            datamodel::AccessError::TypeMismatch { array, want } => {
                AdaptorError::LayoutUnsupported {
                    name: array,
                    detail: format!("stored scalar type is not {want}"),
                }
            }
            datamodel::AccessError::LayoutUnsupported { array, detail } => {
                AdaptorError::LayoutUnsupported {
                    name: array,
                    detail,
                }
            }
        }
    }
}

impl std::fmt::Display for AdaptorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaptorError::UnknownArray { name, assoc } => {
                write!(f, "unknown {assoc} array '{name}'")
            }
            AdaptorError::WrongAssociation {
                name,
                requested,
                available,
            } => write!(
                f,
                "array '{name}' requested as {requested} data but provided as {available} data"
            ),
            AdaptorError::LayoutUnsupported { name, detail } => {
                write!(f, "cannot attach array '{name}': {detail}")
            }
            AdaptorError::WrongSpace { name, have, want } => write!(
                f,
                "array '{name}' lives in {have} but was accessed from {want} \
                 without an explicit transfer"
            ),
        }
    }
}

impl std::error::Error for AdaptorError {}

/// Simulation-side adaptor: maps the simulation's native structures into
/// the shared data model **on demand**.
///
/// Implementations should be lazy and zero-copy: [`DataAdaptor::mesh`]
/// returns structure only; arrays are attached when an analysis asks for
/// them via [`DataAdaptor::add_array`]. When no analysis is enabled the
/// bridge never calls either, so instrumentation overhead is near zero
/// (the paper's §3.2 design point).
pub trait DataAdaptor {
    /// Simulated physical time of the current step.
    fn time(&self) -> f64;

    /// Current timestep index.
    fn step(&self) -> u64;

    /// The mesh **structure** (no attribute arrays).
    fn mesh(&self) -> DataSet;

    /// Names of arrays the simulation can provide for `assoc`.
    fn array_names(&self, assoc: Association) -> Vec<String>;

    /// Attach the named array to `mesh` (zero-copy when layouts allow).
    /// A typed [`AdaptorError`] says why an array could not be attached,
    /// so consumers can surface the cause instead of silently skipping.
    fn add_array(
        &self,
        mesh: &mut DataSet,
        assoc: Association,
        name: &str,
    ) -> Result<(), AdaptorError>;

    /// Convenience: mesh with every available point and cell array
    /// attached. Infrastructures that snapshot everything (ADIOS, I/O)
    /// use this; targeted analyses should pull only what they need.
    fn full_mesh(&self) -> DataSet {
        let mut mesh = self.mesh();
        for assoc in [Association::Point, Association::Cell] {
            for name in self.array_names(assoc) {
                if let Err(err) = self.add_array(&mut mesh, assoc, &name) {
                    debug_assert!(false, "advertised array '{name}' was not provided: {err}");
                    let _ = err;
                }
            }
        }
        mesh
    }

    /// Release references to simulation data after the bridge finishes a
    /// step. Default: nothing (adaptors built per step need no release).
    ///
    /// This call is the happens-before edge the sanitizer keys on: the
    /// bridge's publish window over the adaptor's arrays closes right
    /// after it, so simulation writes that wait for `Bridge::execute`
    /// to return are ordered after every staged zero-copy view.
    fn release_data(&self) {}
}

/// A ready-made adaptor wrapping an already-constructed [`DataSet`]:
/// used by tests, examples, and the endpoint side of staging transports
/// (which receive materialized data rather than live simulation state).
pub struct InMemoryAdaptor {
    data: DataSet,
    time: f64,
    step: u64,
}

impl InMemoryAdaptor {
    /// Wrap `data` at the given time/step.
    pub fn new(data: DataSet, time: f64, step: u64) -> Self {
        InMemoryAdaptor { data, time, step }
    }

    /// Access the wrapped dataset.
    pub fn data(&self) -> &DataSet {
        &self.data
    }

    /// Classify a lookup miss: does the array live under the other
    /// association, or not at all?
    fn missing(&self, assoc: Association, name: &str) -> AdaptorError {
        if self.array_names(assoc.other()).iter().any(|n| n == name) {
            AdaptorError::WrongAssociation {
                name: name.to_string(),
                requested: assoc,
                available: assoc.other(),
            }
        } else {
            AdaptorError::UnknownArray {
                name: name.to_string(),
                assoc,
            }
        }
    }
}

impl DataAdaptor for InMemoryAdaptor {
    fn time(&self) -> f64 {
        self.time
    }

    fn step(&self) -> u64 {
        self.step
    }

    fn mesh(&self) -> DataSet {
        // Structure only: strip attributes.
        fn strip(ds: &DataSet) -> DataSet {
            match ds {
                DataSet::Image(g) => {
                    let mut g = g.clone();
                    g.point_data = datamodel::Attributes::new();
                    g.cell_data = datamodel::Attributes::new();
                    DataSet::Image(g)
                }
                DataSet::Rectilinear(g) => {
                    let mut g = g.clone();
                    g.point_data = datamodel::Attributes::new();
                    g.cell_data = datamodel::Attributes::new();
                    DataSet::Rectilinear(g)
                }
                DataSet::Unstructured(g) => {
                    let mut g = g.clone();
                    g.point_data = datamodel::Attributes::new();
                    g.cell_data = datamodel::Attributes::new();
                    DataSet::Unstructured(g)
                }
                DataSet::Multi(m) => {
                    let mut out = datamodel::MultiBlock::with_slots(m.num_slots());
                    for i in 0..m.num_slots() {
                        if let Some(b) = m.block(i) {
                            out.set(i, strip(b));
                        }
                    }
                    DataSet::Multi(out)
                }
            }
        }
        strip(&self.data)
    }

    fn array_names(&self, assoc: Association) -> Vec<String> {
        // Union over leaves so a multiblock adaptor (a rank carrying
        // several mesh pieces) advertises every array any leaf holds.
        let mut names: Vec<String> = Vec::new();
        for leaf in self.data.leaves() {
            let attrs = match assoc {
                Association::Point => leaf.point_data(),
                Association::Cell => leaf.cell_data(),
            };
            for n in attrs.map(|a| a.names()).unwrap_or_default() {
                if !names.iter().any(|x| x == n) {
                    names.push(n.to_string());
                }
            }
        }
        names
    }

    fn add_array(
        &self,
        mesh: &mut DataSet,
        assoc: Association,
        name: &str,
    ) -> Result<(), AdaptorError> {
        // Clone is cheap for shared (zero-copy) buffers: it bumps a
        // refcount per buffer rather than copying elements.
        fn attach(
            leaf: &mut DataSet,
            assoc: Association,
            name: &str,
            array: datamodel::DataArray,
        ) -> Result<(), AdaptorError> {
            match (leaf, assoc) {
                (DataSet::Image(g), Association::Point) => g.point_data.insert(array),
                (DataSet::Image(g), Association::Cell) => g.cell_data.insert(array),
                (DataSet::Rectilinear(g), Association::Point) => g.point_data.insert(array),
                (DataSet::Rectilinear(g), Association::Cell) => g.cell_data.insert(array),
                (DataSet::Unstructured(g), Association::Point) => g.point_data.insert(array),
                (DataSet::Unstructured(g), Association::Cell) => g.cell_data.insert(array),
                (DataSet::Multi(_), _) => {
                    return Err(AdaptorError::LayoutUnsupported {
                        name: name.to_string(),
                        detail: "target leaf is a multiblock, not a grid".to_string(),
                    })
                }
            }
            Ok(())
        }
        let lookup = |leaf: &DataSet| {
            let attrs = match assoc {
                Association::Point => leaf.point_data(),
                Association::Cell => leaf.cell_data(),
            };
            attrs.and_then(|a| a.get(name)).cloned()
        };
        match (&self.data, mesh) {
            // Multiblock: attach slot-by-slot so each leaf of the target
            // receives its own leaf's array, never a sibling's.
            (DataSet::Multi(src), DataSet::Multi(dst)) => {
                let mut attached = 0usize;
                let mut first_err = None;
                for i in 0..src.num_slots() {
                    if let (Some(s), Some(d)) = (src.block(i), dst.block_mut(i)) {
                        if let Some(array) = lookup(s) {
                            match attach(d, assoc, name, array) {
                                Ok(()) => attached += 1,
                                Err(e) => first_err = first_err.or(Some(e)),
                            }
                        }
                    }
                }
                if attached > 0 {
                    // A partially-present array (some leaves hold it) is
                    // attached wherever it exists, matching multiblock
                    // semantics where blocks differ.
                    Ok(())
                } else if let Some(e) = first_err {
                    Err(e)
                } else {
                    Err(self.missing(assoc, name))
                }
            }
            (src, dst) => match lookup(src) {
                Some(array) => attach(dst, assoc, name, array),
                None => Err(self.missing(assoc, name)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamodel::{DataArray, Extent, ImageData};
    use std::sync::Arc;

    fn sample() -> InMemoryAdaptor {
        let e = Extent::whole([3, 3, 3]);
        let mut g = ImageData::new(e, e);
        g.add_point_array(DataArray::shared(
            "data",
            1,
            Arc::new((0..27).map(|i| i as f64).collect()),
        ));
        g.add_cell_array(DataArray::owned("rho", 1, vec![1.0f64; 8]));
        InMemoryAdaptor::new(DataSet::Image(g), 1.5, 3)
    }

    #[test]
    fn mesh_is_structure_only() {
        let a = sample();
        let mesh = a.mesh();
        assert_eq!(mesh.point_data().unwrap().len(), 0);
        assert_eq!(mesh.cell_data().unwrap().len(), 0);
        assert_eq!(mesh.num_points(), 27);
    }

    #[test]
    fn lazy_array_attachment() {
        let a = sample();
        let mut mesh = a.mesh();
        assert!(a.add_array(&mut mesh, Association::Point, "data").is_ok());
        assert_eq!(mesh.point_data().unwrap().len(), 1);
        assert_eq!(
            a.add_array(&mut mesh, Association::Point, "nope"),
            Err(AdaptorError::UnknownArray {
                name: "nope".into(),
                assoc: Association::Point,
            })
        );
    }

    #[test]
    fn wrong_association_is_distinguished_from_unknown() {
        // "rho" exists as cell data; asking for it as point data names
        // the association the adaptor actually has.
        let a = sample();
        let mut mesh = a.mesh();
        let err = a
            .add_array(&mut mesh, Association::Point, "rho")
            .unwrap_err();
        assert_eq!(
            err,
            AdaptorError::WrongAssociation {
                name: "rho".into(),
                requested: Association::Point,
                available: Association::Cell,
            }
        );
        assert!(err.to_string().contains("cell data"), "{err}");
    }

    #[test]
    fn attached_array_stays_zero_copy() {
        let a = sample();
        let mut mesh = a.mesh();
        a.add_array(&mut mesh, Association::Point, "data").unwrap();
        assert!(mesh
            .point_data()
            .unwrap()
            .get("data")
            .unwrap()
            .is_zero_copy());
    }

    #[test]
    fn full_mesh_has_everything() {
        let a = sample();
        let m = a.full_mesh();
        assert_eq!(m.point_data().unwrap().len(), 1);
        assert_eq!(m.cell_data().unwrap().len(), 1);
        assert_eq!(a.time(), 1.5);
        assert_eq!(a.step(), 3);
    }

    #[test]
    fn multiblock_adaptor_attaches_per_slot() {
        // Two leaves with same-named arrays but different values: each
        // target leaf must receive its own leaf's array, not a sibling's.
        let e = Extent::whole([2, 1, 1]);
        let mut mb = datamodel::MultiBlock::new();
        for i in 0..2 {
            let mut g = ImageData::new(e, e);
            g.add_point_array(DataArray::owned("data", 1, vec![i as f64; 2]));
            mb.push(DataSet::Image(g));
        }
        let a = InMemoryAdaptor::new(DataSet::Multi(mb), 0.0, 0);
        assert_eq!(a.array_names(Association::Point), vec!["data".to_string()]);
        let m = a.full_mesh();
        let leaves: Vec<_> = m.leaves().collect();
        assert_eq!(leaves.len(), 2);
        for (i, leaf) in leaves.iter().enumerate() {
            let arr = leaf.point_data().unwrap().get("data").unwrap();
            assert_eq!(arr.get(0, 0), i as f64, "leaf {i} kept its own array");
        }
    }

    #[test]
    fn array_names_by_association() {
        let a = sample();
        assert_eq!(a.array_names(Association::Point), vec!["data".to_string()]);
        assert_eq!(a.array_names(Association::Cell), vec!["rho".to_string()]);
    }
}
