//! Intra-rank execution: chunked data parallelism inside one MPI rank.
//!
//! The paper's heterogeneous-architectures follow-up observes that a
//! generic in situ interface only stays "as fast as the hardware allows"
//! if the per-step hot path exploits intra-rank data parallelism while
//! the communicator stays single-threaded (`MPI_THREAD_FUNNELED`). This
//! module is the workspace's one implementation of that model: split an
//! index space into contiguous chunks, run a worker per chunk on scoped
//! threads, and merge per-thread results deterministically — never
//! touching a [`minimpi::Comm`] off the rank thread.
//!
//! Everything here is order-preserving: chunk results come back in chunk
//! order, so reductions that are associative-but-not-commutative over
//! chunks (e.g. float accumulation in a fixed merge order) stay
//! reproducible at any thread count.

use std::ops::Range;

/// Resolve a requested thread count: `0` means "use the machine's
/// available parallelism", anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Split `0..n` into at most `parts` contiguous, non-empty, near-equal
/// ranges covering every index exactly once (first `n % parts` ranges
/// are one longer). Returns an empty vector when `n == 0`.
pub fn split_even(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(n);
    let mut out = Vec::with_capacity(parts);
    if n == 0 {
        return out;
    }
    let base = n / parts;
    let extra = n % parts;
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Map `f` over contiguous chunks of `data` on up to `threads` scoped
/// threads; results are returned **in chunk order**, so a fold over them
/// is deterministic regardless of scheduling.
///
/// `f` receives `(chunk_index, chunk_start, chunk)`. With one chunk (or
/// `threads <= 1`) everything runs inline on the caller's thread — no
/// spawn cost on the serial path.
pub fn map_chunks<T, R, F>(threads: usize, data: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, usize, &[T]) -> R + Sync,
{
    let ranges = split_even(data.len(), resolve_threads(threads));
    match ranges.len() {
        0 => Vec::new(),
        1 => vec![f(0, 0, data)],
        _ => std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .enumerate()
                .map(|(i, r)| {
                    let f = &f;
                    let chunk = &data[r.clone()];
                    scope.spawn(move || f(i, r.start, chunk))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        }),
    }
}

/// Run `f` over contiguous *cell* ranges of two parallel mutable
/// buffers, on up to `threads` scoped threads. `a` and `b` hold a fixed
/// number of elements per cell (`a.len() = cells × stride_a`, likewise
/// `b`); each worker receives the cell range plus the exactly-matching
/// sub-slices of both buffers, so per-cell state split across two arrays
/// (e.g. history + running sums) partitions without any copying.
pub fn zip_chunks_mut<A, B, F>(threads: usize, cells: usize, a: &mut [A], b: &mut [B], f: F)
where
    A: Send,
    B: Send,
    F: Fn(Range<usize>, &mut [A], &mut [B]) + Sync,
{
    if cells == 0 {
        return;
    }
    assert_eq!(a.len() % cells, 0, "a must hold whole cells");
    assert_eq!(b.len() % cells, 0, "b must hold whole cells");
    let sa = a.len() / cells;
    let sb = b.len() / cells;
    let ranges = split_even(cells, resolve_threads(threads));
    if ranges.len() <= 1 {
        f(0..cells, a, b);
        return;
    }
    std::thread::scope(|scope| {
        let mut ra = a;
        let mut rb = b;
        for r in ranges {
            let (ca, ta) = ra.split_at_mut(r.len() * sa);
            let (cb, tb) = rb.split_at_mut(r.len() * sb);
            ra = ta;
            rb = tb;
            let f = &f;
            scope.spawn(move || f(r, ca, cb));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_is_machine_width() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn split_covers_exactly_once() {
        for n in [0usize, 1, 2, 7, 16, 1000] {
            for parts in [1usize, 2, 3, 7, 64] {
                let ranges = split_even(n, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous");
                    assert!(!r.is_empty(), "non-empty");
                    next = r.end;
                }
                assert_eq!(next, n, "covers all of 0..{n}");
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn split_is_balanced() {
        let ranges = split_even(10, 3);
        let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![4, 3, 3]);
    }

    #[test]
    fn map_chunks_ordered_results() {
        let data: Vec<u64> = (0..1000).collect();
        let serial = map_chunks(1, &data, |_, _, c| c.iter().sum::<u64>());
        let parallel = map_chunks(8, &data, |_, _, c| c.iter().sum::<u64>());
        assert_eq!(serial.iter().sum::<u64>(), parallel.iter().sum::<u64>());
        // Chunk order: starts must be increasing.
        let starts = map_chunks(8, &data, |_, s, _| s);
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn map_chunks_empty_input() {
        let out: Vec<u32> = map_chunks(4, &[] as &[u8], |_, _, _| 1u32);
        assert!(out.is_empty());
    }

    #[test]
    fn zip_chunks_mut_partitions_both_buffers() {
        // 10 cells, stride 3 in `a`, stride 2 in `b`: every worker must
        // see matching sub-ranges of both.
        let cells = 10;
        let mut a = vec![0u32; cells * 3];
        let mut b = vec![0u32; cells * 2];
        zip_chunks_mut(4, cells, &mut a, &mut b, |r, ca, cb| {
            assert_eq!(ca.len(), r.len() * 3);
            assert_eq!(cb.len(), r.len() * 2);
            for (i, c) in r.clone().enumerate() {
                ca[i * 3] = c as u32;
                cb[i * 2 + 1] = c as u32 * 10;
            }
        });
        for c in 0..cells {
            assert_eq!(a[c * 3], c as u32);
            assert_eq!(b[c * 2 + 1], c as u32 * 10);
        }
    }

    #[test]
    fn zip_chunks_mut_zero_cells_is_noop() {
        zip_chunks_mut(
            4,
            0,
            &mut [] as &mut [u8],
            &mut [] as &mut [u8],
            |_, _, _| panic!("must not run"),
        );
    }
}
