//! The in situ bridge: the single integration point a simulation calls.
//!
//! A typical instrumentation (§3.2): build a bridge and [`register`]
//! analysis adaptors during simulation initialization; call
//! [`Bridge::execute`] once per timestep with the data adaptor; call
//! [`Bridge::finalize`] at shutdown. The bridge times every phase and —
//! when given a live [`probe::Probe`] — feeds the cross-rank
//! observability layer, producing the one-time vs. per-step
//! decomposition and the per-rank min/mean/max/stddev breakdowns the
//! paper's figures report.
//!
//! [`register`]: Bridge::register

use std::collections::BTreeSet;

use minimpi::Comm;
use probe::{GaugeStat, Probe, RunReport, Snapshot, SpanStat};

use crate::adaptor::DataAdaptor;
use crate::analysis::{AnalysisAdaptor, Steering};
use crate::timing::{Category, TimingDb};

/// Which analysis asked the simulation to stop, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StopInfo {
    /// Name of the analysis whose verdict was [`Steering::Stop`].
    pub analysis: String,
    /// The reason it gave.
    pub reason: String,
}

/// The bridge between a simulation and its enabled analyses.
pub struct Bridge {
    analyses: Vec<Box<dyn AnalysisAdaptor>>,
    timings: TimingDb,
    steps: u64,
    finalized: bool,
    failures: Vec<String>,
    seen_failures: BTreeSet<String>,
    probe: Probe,
    stopped: Option<StopInfo>,
}

impl Default for Bridge {
    fn default() -> Self {
        Self::new()
    }
}

/// Pending analysis registration returned by [`Bridge::register`].
///
/// The registration commits when this guard drops, so the plain call
/// `bridge.register(analysis);` registers immediately, while builder
/// methods refine it first:
///
/// ```
/// # use sensei::analysis::histogram::HistogramAnalysis;
/// # let mut bridge = sensei::bridge::Bridge::new();
/// # let adaptor = Box::new(HistogramAnalysis::new("data", 8));
/// # let measured_seconds = 0.25;
/// bridge.register(adaptor).init_cost(measured_seconds);
/// ```
pub struct Registration<'b> {
    bridge: &'b mut Bridge,
    analysis: Option<Box<dyn AnalysisAdaptor>>,
    init_seconds: f64,
}

impl Registration<'_> {
    /// Record `seconds` as the analysis's one-time construction cost
    /// (infrastructures with heavyweight startup pass their measured
    /// init time here so Fig. 5 can report it). Default: 0.
    pub fn init_cost(mut self, seconds: f64) -> Self {
        self.init_seconds = seconds;
        self
    }
}

impl Drop for Registration<'_> {
    fn drop(&mut self) {
        if let Some(analysis) = self.analysis.take() {
            let label = analysis.name().to_string();
            self.bridge
                .timings
                .record(Category::Initialize(label), self.init_seconds);
            self.bridge.analyses.push(analysis);
        }
    }
}

impl Bridge {
    /// An empty bridge (no analyses enabled — per-step overhead is then
    /// limited to one trivially cheap adaptor call, the paper's
    /// "Baseline" configuration). Probing starts disabled; every
    /// instrumentation point is a no-op branch.
    pub fn new() -> Self {
        Bridge {
            analyses: Vec::new(),
            timings: TimingDb::new(),
            steps: 0,
            finalized: false,
            failures: Vec::new(),
            seen_failures: BTreeSet::new(),
            probe: Probe::off(),
            stopped: None,
        }
    }

    /// A bridge recording through the given probe (pass
    /// [`probe::enabled()`] to collect spans, counters, and gauges).
    pub fn with_probe(probe: Probe) -> Self {
        let mut b = Self::new();
        b.probe = probe;
        b
    }

    /// Swap the observability probe (typically `probe::enabled()`).
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// The bridge's probe handle (off by default).
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    /// Register an analysis adaptor. The returned guard commits on drop;
    /// chain [`Registration::init_cost`] to attach a measured one-time
    /// construction cost before it does.
    ///
    /// # Panics
    /// Panics if called after [`Bridge::finalize`].
    pub fn register(&mut self, analysis: Box<dyn AnalysisAdaptor>) -> Registration<'_> {
        assert!(!self.finalized, "bridge already finalized");
        Registration {
            bridge: self,
            analysis: Some(analysis),
            init_seconds: 0.0,
        }
    }

    /// Bulk registration: enable N consumers in one call (the staging
    /// broker's many-subscriber pattern — a fleet of per-topic
    /// analysis clients registers as one batch, each with zero init
    /// cost). Use [`Bridge::register`] when a consumer needs an
    /// [`Registration::init_cost`] attached.
    ///
    /// # Panics
    /// Panics if called after [`Bridge::finalize`].
    pub fn register_many(&mut self, analyses: impl IntoIterator<Item = Box<dyn AnalysisAdaptor>>) {
        for analysis in analyses {
            self.register(analysis);
        }
    }

    /// Number of registered analyses.
    pub fn num_analyses(&self) -> usize {
        self.analyses.len()
    }

    /// Pass the current step's data to every analysis, returning the
    /// aggregate [`Steering`] verdict: [`Steering::Stop`] if any
    /// analysis requested a stop (first stopper's reason wins; see
    /// [`Bridge::stop_info`] for who it was).
    ///
    /// # Panics
    /// Panics if called after [`Bridge::finalize`].
    pub fn execute(&mut self, data: &dyn DataAdaptor, comm: &Comm) -> Steering {
        assert!(!self.finalized, "bridge already finalized");
        // Lend the probe to the communicator so collective traffic
        // driven by the analyses lands in the same report.
        if self.probe.is_enabled() && !comm.probe().is_enabled() {
            comm.attach_probe(self.probe.clone());
        }
        let _bridge_span = self.probe.span("per-step/bridge");
        self.steps += 1;
        // Sanitizer: the bridge is the zero-copy staging boundary — for
        // the rest of this step every analysis (and through them the
        // endpoints) reads the adaptor's arrays in place. Hold one
        // publish window over everything the adaptor can stage, closing
        // it only after release_data(). Guarded so the extra full_mesh
        // materialization costs nothing when the sanitizer is off.
        let _publish = if sanitizer::active() {
            Some(datamodel::publish_dataset(&data.full_mesh(), "bridge"))
        } else {
            None
        };
        let mut stop: Option<StopInfo> = None;
        for analysis in &mut self.analyses {
            let label = Category::PerStep(analysis.name().to_string());
            let verdict = self.timings.timed(label, || analysis.execute(data, comm));
            for failure in analysis.take_failures() {
                let tagged = format!("{}: {failure}", analysis.name());
                if self.seen_failures.insert(tagged.clone()) {
                    self.failures.push(tagged);
                }
            }
            if let Steering::Stop { reason } = verdict {
                stop.get_or_insert_with(|| StopInfo {
                    analysis: analysis.name().to_string(),
                    reason,
                });
            }
        }
        data.release_data();
        match stop {
            Some(info) => {
                let reason = info.reason.clone();
                self.stopped = Some(info);
                Steering::Stop { reason }
            }
            None => Steering::Continue,
        }
    }

    /// Who requested the most recent stop (set once any execute returns
    /// [`Steering::Stop`]; `None` while the run is healthy).
    pub fn stop_info(&self) -> Option<&StopInfo> {
        self.stopped.as_ref()
    }

    /// Finalize every analysis and build the run's observability report.
    ///
    /// Collective: each rank folds its timing table, probe spans,
    /// counters, and memory gauges into a local [`Snapshot`]; snapshots
    /// gather to rank 0, which aggregates min/mean/max/stddev and
    /// rank-of-extremum per label. Non-root ranks aggregate their own
    /// snapshot only (their report still carries full local detail).
    ///
    /// # Panics
    /// Panics if called twice.
    pub fn finalize(&mut self, comm: &Comm) -> RunReport {
        assert!(!self.finalized, "bridge already finalized");
        self.finalized = true;
        // Sanitizer: by finalize, every zero-copy publish window must
        // have closed — an endpoint still holding a staged view here
        // is a leak (reported per window, with the opening clock).
        sanitizer::check_view_leaks("Bridge::finalize");
        for analysis in &mut self.analyses {
            let label = Category::Finalize(analysis.name().to_string());
            self.timings.timed(label, || analysis.finalize(comm));
            for failure in analysis.take_failures() {
                let tagged = format!("{}: {failure}", analysis.name());
                if self.seen_failures.insert(tagged.clone()) {
                    self.failures.push(tagged);
                }
            }
        }
        let snap = self.local_snapshot();
        let tagged: Vec<String> = self
            .failures
            .iter()
            .map(|f| format!("rank {}: {f}", comm.rank()))
            .collect();
        match comm.gather(0, (snap.clone(), tagged.clone())) {
            Some(gathered) => {
                let mut snaps = Vec::with_capacity(gathered.len());
                let mut failures = Vec::new();
                for (s, f) in gathered {
                    snaps.push(s);
                    failures.extend(f);
                }
                RunReport::build(comm.size(), self.steps, failures, &snaps)
            }
            None => RunReport::build(comm.size(), self.steps, tagged, std::slice::from_ref(&snap)),
        }
    }

    /// This rank's observability snapshot: the timing table rendered as
    /// `initialize/…`, `per-step/…`, `finalize/…` spans, merged with
    /// whatever the probe recorded, plus the allocation high-water
    /// gauge.
    fn local_snapshot(&self) -> Snapshot {
        let mut snap = self.probe.snapshot();
        for cat in self.timings.categories() {
            let label = match cat {
                Category::Initialize(l) => format!("initialize/{l}"),
                Category::PerStep(l) => format!("per-step/{l}"),
                Category::Finalize(l) => format!("finalize/{l}"),
            };
            snap.upsert_span(SpanStat::from_samples(label, self.timings.samples(cat)));
        }
        // The allocation high-water mark is a process-global gauge;
        // other concurrently running worlds bleed into it. Skip it on
        // virtual-time (deterministically scheduled) ranks, where
        // reports must be byte-identical across same-seed runs.
        if !probe::time::is_virtual() {
            let peak = probe::alloc::peak_bytes() as u64;
            if peak > 0 {
                set_gauge(&mut snap, probe::GAUGE_ALLOC_PEAK, peak);
            }
        }
        snap
    }

    /// Timing database (valid any time; complete after finalize).
    pub fn timings(&self) -> &TimingDb {
        &self.timings
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Record a non-fatal infrastructure failure (e.g. a writer lost in
    /// transit whose stream degraded to end-of-stream). The run
    /// continues; the report is surfaced so a degraded pipeline is never
    /// mistaken for a healthy one. Duplicate reports collapse to one.
    pub fn record_failure(&mut self, report: impl Into<String>) {
        let report = report.into();
        if self.seen_failures.insert(report.clone()) {
            self.failures.push(report);
        }
    }

    /// Failure reports recorded during the run (empty = healthy).
    pub fn failure_reports(&self) -> &[String] {
        &self.failures
    }
}

/// Raise (or insert) a gauge in a snapshot, keeping name order.
fn set_gauge(snap: &mut Snapshot, name: &str, value: u64) {
    match snap.gauges.binary_search_by(|g| g.name.as_str().cmp(name)) {
        Ok(i) => snap.gauges[i].max = snap.gauges[i].max.max(value),
        Err(i) => snap.gauges.insert(
            i,
            GaugeStat {
                name: name.to_string(),
                max: value,
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptor::{Association, InMemoryAdaptor};
    use crate::analysis::descriptive::DescriptiveStats;
    use crate::analysis::histogram::HistogramAnalysis;
    use datamodel::{DataArray, DataSet, Extent, ImageData};
    use minimpi::World;

    fn adaptor(step: u64) -> InMemoryAdaptor {
        let e = Extent::whole([4, 1, 1]);
        let mut g = ImageData::new(e, e);
        g.add_point_array(DataArray::owned("data", 1, vec![1.0, 2.0, 3.0, 4.0]));
        InMemoryAdaptor::new(DataSet::Image(g), step as f64, step)
    }

    #[test]
    fn bridge_runs_multiple_analyses_per_step() {
        World::run(2, |comm| {
            let hist = HistogramAnalysis::new("data", 4);
            let hist_res = hist.results_handle();
            let stats = DescriptiveStats::new("data");
            let stats_res = stats.results_handle();
            let mut bridge = Bridge::new();
            bridge.register(Box::new(hist));
            bridge.register(Box::new(stats));
            assert_eq!(bridge.num_analyses(), 2);

            for s in 0..3 {
                assert!(bridge.execute(&adaptor(s), comm).should_continue());
            }
            let report = bridge.finalize(comm);

            assert_eq!(bridge.steps(), 3);
            assert_eq!(report.steps, 3);
            assert_eq!(report.ranks, 2);
            if comm.rank() == 0 {
                assert!(hist_res.lock().is_some());
            }
            assert!(stats_res.lock().is_some());
            // Timing database captured 3 per-step samples per analysis,
            // and the report carries them as per-step phases.
            let t = bridge.timings();
            assert_eq!(t.per_step("histogram").unwrap().count, 3);
            assert_eq!(t.per_step("descriptive-stats").unwrap().count, 3);
            assert!(t.finalize("histogram").is_some());
            let phase = report.phase("per-step/histogram").expect("phase present");
            let expected = if comm.rank() == 0 {
                3 * comm.size() as u64
            } else {
                3 // non-root aggregates its own snapshot only
            };
            assert_eq!(phase.samples, expected);
            assert!(phase.max_s >= phase.min_s);
        });
    }

    #[test]
    fn register_many_registers_a_batch_of_consumers() {
        World::run(1, |comm| {
            let mut bridge = Bridge::new();
            let batch: Vec<Box<dyn AnalysisAdaptor>> = (0..8)
                .map(|i| {
                    Box::new(HistogramAnalysis::new("data", 4 + i)) as Box<dyn AnalysisAdaptor>
                })
                .collect();
            bridge.register_many(batch);
            assert_eq!(bridge.num_analyses(), 8);
            assert!(bridge.execute(&adaptor(0), comm).should_continue());
            let report = bridge.finalize(comm);
            assert_eq!(report.steps, 1);
        });
    }

    #[test]
    fn empty_bridge_is_near_free() {
        World::run(1, |comm| {
            let mut bridge = Bridge::new();
            let t0 = std::time::Instant::now();
            for s in 0..1000 {
                bridge.execute(&adaptor(s), comm);
            }
            // 1000 baseline bridge calls complete in far under a second:
            // the "almost nonexistent" instrumentation overhead claim,
            // with the probe layer compiled in but switched off.
            assert!(t0.elapsed().as_secs_f64() < 1.0);
        });
    }

    #[test]
    fn steering_stop_propagates_with_reason() {
        struct StopAfter(u64);
        impl AnalysisAdaptor for StopAfter {
            fn name(&self) -> &str {
                "stopper"
            }
            fn execute(&mut self, data: &dyn DataAdaptor, _comm: &Comm) -> Steering {
                if data.step() < self.0 {
                    Steering::Continue
                } else {
                    Steering::stop(format!("step budget {} exhausted", self.0))
                }
            }
        }
        World::run(1, |comm| {
            let mut bridge = Bridge::new();
            bridge.register(Box::new(StopAfter(2)));
            assert!(bridge.execute(&adaptor(0), comm).should_continue());
            assert!(bridge.stop_info().is_none());
            assert!(bridge.execute(&adaptor(1), comm).should_continue());
            let verdict = bridge.execute(&adaptor(2), comm);
            assert_eq!(verdict, Steering::stop("step budget 2 exhausted"));
            let info = bridge.stop_info().expect("stopper identified");
            assert_eq!(info.analysis, "stopper");
            assert_eq!(info.reason, "step budget 2 exhausted");
        });
    }

    #[test]
    fn analysis_failures_drain_into_the_report() {
        struct Flaky;
        impl AnalysisAdaptor for Flaky {
            fn name(&self) -> &str {
                "flaky"
            }
            fn execute(&mut self, _data: &dyn DataAdaptor, _comm: &Comm) -> Steering {
                Steering::Continue
            }
            fn take_failures(&mut self) -> Vec<String> {
                vec!["lost connection".to_string()]
            }
        }
        World::run(1, |comm| {
            let mut bridge = Bridge::new();
            bridge.register(Box::new(Flaky));
            for s in 0..3 {
                bridge.execute(&adaptor(s), comm);
            }
            // The same failure every step collapses to one report.
            assert_eq!(bridge.failure_reports(), ["flaky: lost connection"]);
            let report = bridge.finalize(comm);
            assert_eq!(report.failures, ["rank 0: flaky: lost connection"]);
        });
    }

    #[test]
    #[should_panic(expected = "already finalized")]
    fn execute_after_finalize_panics() {
        World::run(1, |comm| {
            let mut bridge = Bridge::new();
            bridge.finalize(comm);
            bridge.execute(&adaptor(0), comm);
        });
    }

    #[test]
    fn init_cost_recording() {
        World::run(1, |_comm| {
            let mut bridge = Bridge::new();
            bridge
                .register(Box::new(DescriptiveStats::with_association(
                    "data",
                    Association::Point,
                )))
                .init_cost(1.25);
            let s = bridge.timings().initialize("descriptive-stats").unwrap();
            assert_eq!(s.total, 1.25);
        });
    }

    #[test]
    fn probed_bridge_reports_spans_and_collective_counters() {
        World::run(4, |comm| {
            let mut bridge = Bridge::with_probe(probe::enabled());
            bridge.register(Box::new(DescriptiveStats::new("data")));
            for s in 0..5 {
                bridge.execute(&adaptor(s), comm);
            }
            let report = bridge.finalize(comm);
            // The bridge span wraps every step on every rank. Rank 0
            // aggregates the gathered snapshots; other ranks see their
            // own snapshot only.
            let bspan = report.phase("per-step/bridge").expect("bridge span");
            // Descriptive stats allreduce (reduce + bcast) each step:
            // the counters flowed from the communicator into the report.
            let c = report.counter("minimpi/reduce").expect("reduce counted");
            if comm.rank() == 0 {
                assert_eq!(bspan.ranks, comm.size());
                assert_eq!(bspan.samples, 5 * comm.size() as u64);
                assert_eq!(c.calls, 5 * comm.size() as u64);
                assert!(c.bytes > 0, "reduce moved bytes");
            } else {
                assert_eq!(bspan.ranks, 1);
                assert_eq!(bspan.samples, 5);
                assert_eq!(c.calls, 5);
            }
        });
    }

    #[test]
    fn unprobed_finalize_still_reports_timings() {
        World::run(2, |comm| {
            let mut bridge = Bridge::new();
            bridge.register(Box::new(DescriptiveStats::new("data")));
            bridge.execute(&adaptor(0), comm);
            let report = bridge.finalize(comm);
            assert!(report.phase("per-step/descriptive-stats").is_some());
            assert!(report.phase("initialize/descriptive-stats").is_some());
            // No probe → no collective counters, but timings survive.
            assert!(report.counter("minimpi/allreduce").is_none());
        });
    }
}
