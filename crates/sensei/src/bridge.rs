//! The in situ bridge: the single integration point a simulation calls.
//!
//! A typical instrumentation (§3.2): build a bridge and register analysis
//! adaptors during simulation initialization; call [`Bridge::execute`]
//! once per timestep with the data adaptor; call [`Bridge::finalize`] at
//! shutdown. The bridge times every phase, producing the one-time vs.
//! per-step decomposition the paper's figures report.

use minimpi::Comm;

use crate::adaptor::DataAdaptor;
use crate::analysis::AnalysisAdaptor;
use crate::timing::{Category, TimingDb};

/// The bridge between a simulation and its enabled analyses.
pub struct Bridge {
    analyses: Vec<Box<dyn AnalysisAdaptor>>,
    timings: TimingDb,
    steps: u64,
    finalized: bool,
    failures: Vec<String>,
}

impl Default for Bridge {
    fn default() -> Self {
        Self::new()
    }
}

impl Bridge {
    /// An empty bridge (no analyses enabled — per-step overhead is then
    /// limited to one trivially cheap adaptor call, the paper's
    /// "Baseline" configuration).
    pub fn new() -> Self {
        Bridge {
            analyses: Vec::new(),
            timings: TimingDb::new(),
            steps: 0,
            finalized: false,
            failures: Vec::new(),
        }
    }

    /// Register an analysis adaptor, timing its registration as a
    /// one-time analysis-initialize cost.
    pub fn add_analysis(&mut self, analysis: Box<dyn AnalysisAdaptor>) {
        let label = analysis.name().to_string();
        self.timings.record(Category::Initialize(label), 0.0);
        self.analyses.push(analysis);
    }

    /// Register an analysis whose construction cost `init_seconds` was
    /// measured by the caller (infrastructures with heavyweight startup
    /// pass their measured init time here so Fig. 5 can report it).
    pub fn add_analysis_with_init_cost(
        &mut self,
        analysis: Box<dyn AnalysisAdaptor>,
        init_seconds: f64,
    ) {
        let label = analysis.name().to_string();
        self.timings
            .record(Category::Initialize(label), init_seconds);
        self.analyses.push(analysis);
    }

    /// Number of registered analyses.
    pub fn num_analyses(&self) -> usize {
        self.analyses.len()
    }

    /// Pass the current step's data to every analysis. Returns `false`
    /// if any analysis requested the simulation stop.
    ///
    /// # Panics
    /// Panics if called after [`Bridge::finalize`].
    pub fn execute(&mut self, data: &dyn DataAdaptor, comm: &Comm) -> bool {
        assert!(!self.finalized, "bridge already finalized");
        self.steps += 1;
        let mut keep_going = true;
        for analysis in &mut self.analyses {
            let label = Category::PerStep(analysis.name().to_string());
            let cont = self.timings.timed(label, || analysis.execute(data, comm));
            keep_going &= cont;
        }
        data.release_data();
        keep_going
    }

    /// Finalize every analysis and hand back the timing database.
    pub fn finalize(&mut self, comm: &Comm) -> &TimingDb {
        assert!(!self.finalized, "bridge already finalized");
        self.finalized = true;
        for analysis in &mut self.analyses {
            let label = Category::Finalize(analysis.name().to_string());
            self.timings.timed(label, || analysis.finalize(comm));
        }
        &self.timings
    }

    /// Timing database (valid any time; complete after finalize).
    pub fn timings(&self) -> &TimingDb {
        &self.timings
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Record a non-fatal infrastructure failure (e.g. a writer lost in
    /// transit whose stream degraded to end-of-stream). The run
    /// continues; the report is surfaced so a degraded pipeline is never
    /// mistaken for a healthy one.
    pub fn record_failure(&mut self, report: impl Into<String>) {
        self.failures.push(report.into());
    }

    /// Failure reports recorded during the run (empty = healthy).
    pub fn failure_reports(&self) -> &[String] {
        &self.failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptor::{Association, InMemoryAdaptor};
    use crate::analysis::descriptive::DescriptiveStats;
    use crate::analysis::histogram::HistogramAnalysis;
    use datamodel::{DataArray, DataSet, Extent, ImageData};
    use minimpi::World;

    fn adaptor(step: u64) -> InMemoryAdaptor {
        let e = Extent::whole([4, 1, 1]);
        let mut g = ImageData::new(e, e);
        g.add_point_array(DataArray::owned("data", 1, vec![1.0, 2.0, 3.0, 4.0]));
        InMemoryAdaptor::new(DataSet::Image(g), step as f64, step)
    }

    #[test]
    fn bridge_runs_multiple_analyses_per_step() {
        World::run(2, |comm| {
            let hist = HistogramAnalysis::new("data", 4);
            let hist_res = hist.results_handle();
            let stats = DescriptiveStats::new("data");
            let stats_res = stats.results_handle();
            let mut bridge = Bridge::new();
            bridge.add_analysis(Box::new(hist));
            bridge.add_analysis(Box::new(stats));
            assert_eq!(bridge.num_analyses(), 2);

            for s in 0..3 {
                assert!(bridge.execute(&adaptor(s), comm));
            }
            bridge.finalize(comm);

            assert_eq!(bridge.steps(), 3);
            if comm.rank() == 0 {
                assert!(hist_res.lock().is_some());
            }
            assert!(stats_res.lock().is_some());
            // Timing database captured 3 per-step samples per analysis.
            let t = bridge.timings();
            assert_eq!(t.per_step("histogram").unwrap().count, 3);
            assert_eq!(t.per_step("descriptive-stats").unwrap().count, 3);
            assert!(t.finalize("histogram").is_some());
        });
    }

    #[test]
    fn empty_bridge_is_near_free() {
        World::run(1, |comm| {
            let mut bridge = Bridge::new();
            let t0 = std::time::Instant::now();
            for s in 0..1000 {
                bridge.execute(&adaptor(s), comm);
            }
            // 1000 baseline bridge calls complete in far under a second:
            // the "almost nonexistent" instrumentation overhead claim.
            assert!(t0.elapsed().as_secs_f64() < 1.0);
        });
    }

    #[test]
    fn steering_stop_propagates() {
        struct StopAfter(u64);
        impl AnalysisAdaptor for StopAfter {
            fn name(&self) -> &str {
                "stopper"
            }
            fn execute(&mut self, data: &dyn DataAdaptor, _comm: &Comm) -> bool {
                data.step() < self.0
            }
        }
        World::run(1, |comm| {
            let mut bridge = Bridge::new();
            bridge.add_analysis(Box::new(StopAfter(2)));
            assert!(bridge.execute(&adaptor(0), comm));
            assert!(bridge.execute(&adaptor(1), comm));
            assert!(!bridge.execute(&adaptor(2), comm));
        });
    }

    #[test]
    #[should_panic(expected = "already finalized")]
    fn execute_after_finalize_panics() {
        World::run(1, |comm| {
            let mut bridge = Bridge::new();
            bridge.finalize(comm);
            bridge.execute(&adaptor(0), comm);
        });
    }

    #[test]
    fn init_cost_recording() {
        World::run(1, |_comm| {
            let mut bridge = Bridge::new();
            bridge.add_analysis_with_init_cost(
                Box::new(DescriptiveStats::with_association(
                    "data",
                    Association::Point,
                )),
                1.25,
            );
            let s = bridge.timings().initialize("descriptive-stats").unwrap();
            assert_eq!(s.total, 1.25);
        });
    }
}
