//! The in situ bridge: the single integration point a simulation calls.
//!
//! A typical instrumentation (§3.2): build a bridge and [`register`]
//! analysis adaptors during simulation initialization; call
//! [`Bridge::execute`] once per timestep with the data adaptor; call
//! [`Bridge::finalize`] at shutdown. The bridge times every phase and —
//! when given a live [`probe::Probe`] — feeds the cross-rank
//! observability layer, producing the one-time vs. per-step
//! decomposition and the per-rank min/mean/max/stddev breakdowns the
//! paper's figures report.
//!
//! [`register`]: Bridge::register

use std::collections::BTreeSet;
use std::sync::mpsc;
use std::sync::Arc;

use datamodel::MemorySpace;
use minimpi::Comm;
use probe::time::Wall;
use probe::{GaugeStat, Probe, RunReport, Snapshot, SpanStat};

use crate::adaptor::DataAdaptor;
use crate::analysis::{AnalysisAdaptor, Steering};
use crate::failure::FailureReport;
use crate::timing::{Category, TimingDb};
use probe::FailureEntry;

/// Gauge name for the offload executor's measured overlap efficiency,
/// in permille: `1000 ×` (device busy seconds hidden behind the
/// advancing simulation) / (total device busy seconds). Absent when
/// offload never ran; skipped on virtual-time ranks, where reports
/// must stay byte-identical across same-seed runs.
pub const GAUGE_OVERLAP_PERMILLE: &str = "offload/overlap_permille";

/// Counter name for explicit host→device payload transfers (one call
/// per published window snapshot; bytes = attribute payload moved).
pub const COUNTER_H2D: &str = "space/h2d";

/// Which analysis asked the simulation to stop, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StopInfo {
    /// Name of the analysis whose verdict was [`Steering::Stop`].
    pub analysis: String,
    /// The reason it gave.
    pub reason: String,
}

/// The bridge between a simulation and its enabled analyses.
///
/// Slots are `None` only while an analysis is in flight on an offload
/// worker; every slot is resident again after each sync point.
pub struct Bridge {
    analyses: Vec<Option<Box<dyn AnalysisAdaptor>>>,
    timings: TimingDb,
    steps: u64,
    finalized: bool,
    failures: Vec<FailureReport>,
    seen_failures: BTreeSet<String>,
    probe: Probe,
    stopped: Option<StopInfo>,
    offload: Option<OffloadExec>,
    /// `(busy, hidden)` seconds recorded when the executor shut down.
    overlap: Option<(f64, f64)>,
}

/// Configuration of the asynchronous analysis offload executor
/// ([`Bridge::enable_offload`]).
#[derive(Clone, Copy, Debug)]
pub struct OffloadConfig {
    /// Simulated device ([`MemorySpace::DeviceSim`]) the per-step
    /// payload snapshots are transferred to.
    pub device: u32,
    /// Device worker threads; offloaded analyses round-robin across
    /// them. At least 1.
    pub workers: usize,
}

impl Default for OffloadConfig {
    fn default() -> Self {
        OffloadConfig {
            device: 0,
            workers: 2,
        }
    }
}

/// One job handed to a device worker: the analysis box, a device-space
/// snapshot of the step's publish window, and a dedicated reply lane.
struct Job {
    analysis: Box<dyn AnalysisAdaptor>,
    payload: Arc<datamodel::DataSet>,
    time: f64,
    step: u64,
    probe: Probe,
    reply: mpsc::Sender<Done>,
}

/// A worker's reply: the analysis back (with its pending state filled
/// in) plus how long the local phase kept the device busy.
struct Done {
    analysis: Box<dyn AnalysisAdaptor>,
    busy_seconds: f64,
}

/// A dispatched-but-not-yet-synced analysis, in dispatch order (which
/// every rank shares, so `complete`'s collectives stay aligned).
struct InFlight {
    index: usize,
    name: String,
    reply: mpsc::Receiver<Done>,
}

/// The executor: worker threads, the double-buffered device payload
/// slots, and the running overlap tally.
struct OffloadExec {
    cfg: OffloadConfig,
    jobs: Vec<mpsc::Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    next: usize,
    in_flight: Vec<InFlight>,
    /// Sanitizer obligation id for the live worker pool: opened at
    /// `enable_offload`, discharged at `shutdown_offload`. `None` when
    /// the sanitizer is off.
    obligation: Option<u64>,
    /// Double-buffered payload slots: the window being analyzed and
    /// the window being filled coexist; older ones are dropped.
    slots: [Option<Arc<datamodel::DataSet>>; 2],
    busy_seconds: f64,
    hidden_seconds: f64,
}

/// Device worker loop: enter the device's memory space, run the
/// communicator-free local phase against the snapshot payload, and
/// send the analysis back. Exits when the bridge drops its sender.
fn worker_loop(rx: mpsc::Receiver<Job>, device: u32) {
    while let Ok(job) = rx.recv() {
        let _space = datamodel::enter_space(MemorySpace::DeviceSim(device));
        let t0 = Wall::now();
        let mut analysis = job.analysis;
        let adaptor =
            crate::adaptor::InMemoryAdaptor::new((*job.payload).clone(), job.time, job.step);
        analysis.execute_local(&adaptor, &job.probe);
        let busy_seconds = t0.elapsed().as_secs_f64();
        job.probe
            .record_span("per-step/offload/worker", busy_seconds);
        let _ = job.reply.send(Done {
            analysis,
            busy_seconds,
        });
    }
}

impl Default for Bridge {
    fn default() -> Self {
        Self::new()
    }
}

/// Pending analysis registration returned by [`Bridge::register`].
///
/// The registration commits when this guard drops, so the plain call
/// `bridge.register(analysis);` registers immediately, while builder
/// methods refine it first:
///
/// ```
/// # use sensei::analysis::histogram::HistogramAnalysis;
/// # let mut bridge = sensei::bridge::Bridge::new();
/// # let adaptor = Box::new(HistogramAnalysis::new("data", 8));
/// # let measured_seconds = 0.25;
/// bridge.register(adaptor).init_cost(measured_seconds);
/// ```
pub struct Registration<'b> {
    bridge: &'b mut Bridge,
    analysis: Option<Box<dyn AnalysisAdaptor>>,
    init_seconds: f64,
}

impl Registration<'_> {
    /// Record `seconds` as the analysis's one-time construction cost
    /// (infrastructures with heavyweight startup pass their measured
    /// init time here so Fig. 5 can report it). Default: 0.
    pub fn init_cost(mut self, seconds: f64) -> Self {
        self.init_seconds = seconds;
        self
    }
}

impl Drop for Registration<'_> {
    fn drop(&mut self) {
        if let Some(analysis) = self.analysis.take() {
            let label = analysis.name().to_string();
            self.bridge
                .timings
                .record(Category::Initialize(label), self.init_seconds);
            self.bridge.analyses.push(Some(analysis));
        }
    }
}

impl Bridge {
    /// An empty bridge (no analyses enabled — per-step overhead is then
    /// limited to one trivially cheap adaptor call, the paper's
    /// "Baseline" configuration). Probing starts disabled; every
    /// instrumentation point is a no-op branch.
    pub fn new() -> Self {
        Bridge {
            analyses: Vec::new(),
            timings: TimingDb::new(),
            steps: 0,
            finalized: false,
            failures: Vec::new(),
            seen_failures: BTreeSet::new(),
            probe: Probe::off(),
            stopped: None,
            offload: None,
            overlap: None,
        }
    }

    /// A bridge recording through the given probe (pass
    /// [`probe::enabled()`] to collect spans, counters, and gauges).
    pub fn with_probe(probe: Probe) -> Self {
        let mut b = Self::new();
        b.probe = probe;
        b
    }

    /// Swap the observability probe (typically `probe::enabled()`).
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// The bridge's probe handle (off by default).
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    /// Register an analysis adaptor. The returned guard commits on drop;
    /// chain [`Registration::init_cost`] to attach a measured one-time
    /// construction cost before it does.
    ///
    /// # Panics
    /// Panics if called after [`Bridge::finalize`].
    pub fn register(&mut self, analysis: Box<dyn AnalysisAdaptor>) -> Registration<'_> {
        assert!(!self.finalized, "bridge already finalized");
        Registration {
            bridge: self,
            analysis: Some(analysis),
            init_seconds: 0.0,
        }
    }

    /// Bulk registration: enable N consumers in one call. Kept as a
    /// thin shim over the builder path; each element goes through
    /// [`Bridge::register`] with zero init cost.
    ///
    /// # Panics
    /// Panics if called after [`Bridge::finalize`].
    #[deprecated(
        note = "register each analysis through Bridge::register — the builder is the \
                single registration path (chain init_cost where needed)"
    )]
    pub fn register_many(&mut self, analyses: impl IntoIterator<Item = Box<dyn AnalysisAdaptor>>) {
        for analysis in analyses {
            self.register(analysis);
        }
    }

    /// Number of registered analyses.
    pub fn num_analyses(&self) -> usize {
        self.analyses.len()
    }

    /// Pass the current step's data to every analysis, returning the
    /// aggregate [`Steering`] verdict: [`Steering::Stop`] if any
    /// analysis requested a stop (first stopper's reason wins; see
    /// [`Bridge::stop_info`] for who it was).
    ///
    /// # Panics
    /// Panics if called after [`Bridge::finalize`].
    pub fn execute(&mut self, data: &dyn DataAdaptor, comm: &Comm) -> Steering {
        assert!(!self.finalized, "bridge already finalized");
        // Lend the probe to the communicator so collective traffic
        // driven by the analyses lands in the same report.
        if self.probe.is_enabled() && !comm.probe().is_enabled() {
            comm.attach_probe(self.probe.clone());
        }
        let bridge_probe = self.probe.clone();
        let _bridge_span = bridge_probe.span("per-step/bridge");
        self.steps += 1;
        // Sanitizer: the bridge is the zero-copy staging boundary — for
        // the rest of this step every analysis (and through them the
        // endpoints) reads the adaptor's arrays in place. Hold one
        // publish window over everything the adaptor can stage, closing
        // it only after release_data(). Guarded so the extra full_mesh
        // materialization costs nothing when the sanitizer is off.
        let _publish = if sanitizer::active() {
            Some(datamodel::publish_dataset(&data.full_mesh(), "bridge"))
        } else {
            None
        };
        let mut stop: Option<StopInfo> = None;
        // Sync point: collect last step's offloaded verdicts (one step
        // late by design) before running this step's analyses.
        self.drain_offload(comm, &mut stop);
        let offloading = self.offload.is_some();
        for i in 0..self.analyses.len() {
            let Some(analysis) = self.analyses[i].as_mut() else {
                continue;
            };
            if offloading && analysis.supports_offload() {
                continue; // dispatched below, after the sync analyses ran
            }
            let label = Category::PerStep(analysis.name().to_string());
            let verdict = self.timings.timed(label, || analysis.execute(data, comm));
            for failure in analysis.take_failures() {
                let report = FailureReport::Analysis {
                    analysis: analysis.name().to_string(),
                    detail: failure,
                };
                let key = report.to_string();
                if self.seen_failures.insert(key) {
                    self.failures.push(report);
                }
            }
            for report in analysis.take_failure_reports() {
                let key = report.to_string();
                if self.seen_failures.insert(key) {
                    self.failures.push(report);
                }
            }
            if let Steering::Stop { reason } = verdict {
                stop.get_or_insert_with(|| StopInfo {
                    analysis: analysis.name().to_string(),
                    reason,
                });
            }
        }
        self.dispatch_offload(data);
        data.release_data();
        match stop {
            Some(info) => {
                let reason = info.reason.clone();
                self.stopped = Some(info);
                Steering::Stop { reason }
            }
            None => Steering::Continue,
        }
    }

    /// Who requested the most recent stop (set once any execute returns
    /// [`Steering::Stop`]; `None` while the run is healthy).
    pub fn stop_info(&self) -> Option<&StopInfo> {
        self.stopped.as_ref()
    }

    /// Finalize every analysis and build the run's observability report.
    ///
    /// Collective: each rank folds its timing table, probe spans,
    /// counters, and memory gauges into a local [`Snapshot`]; snapshots
    /// gather to rank 0, which aggregates min/mean/max/stddev and
    /// rank-of-extremum per label. Non-root ranks aggregate their own
    /// snapshot only (their report still carries full local detail).
    ///
    /// # Panics
    /// Panics if called twice.
    pub fn finalize(&mut self, comm: &Comm) -> RunReport {
        assert!(!self.finalized, "bridge already finalized");
        // Last sync point: land any still-in-flight offloaded verdicts
        // before tearing the executor down.
        let mut stop: Option<StopInfo> = None;
        self.drain_offload(comm, &mut stop);
        // Ordering contract (pinned by `last_step_offloaded_verdict_…`
        // in the test suite): the offload executor's one-step-late
        // verdict window must be fully drained — steering verdicts
        // folded into `stopped`, worker failures recorded — *before*
        // the failure list is tagged and gathered below, or the final
        // RunReport would silently miss the last step's steering.
        assert!(
            self.offload.as_ref().is_none_or(|e| e.in_flight.is_empty()),
            "offloaded analyses still in flight at finalize"
        );
        if self.stopped.is_none() {
            self.stopped = stop;
        }
        self.shutdown_offload();
        self.finalized = true;
        // Sanitizer: by finalize, every zero-copy publish window must
        // have closed — an endpoint still holding a staged view here
        // is a leak (reported per window, with the opening clock).
        sanitizer::check_view_leaks("Bridge::finalize");
        for slot in &mut self.analyses {
            let Some(analysis) = slot.as_mut() else {
                continue;
            };
            let label = Category::Finalize(analysis.name().to_string());
            self.timings.timed(label, || analysis.finalize(comm));
            for failure in analysis.take_failures() {
                let report = FailureReport::Analysis {
                    analysis: analysis.name().to_string(),
                    detail: failure,
                };
                let key = report.to_string();
                if self.seen_failures.insert(key) {
                    self.failures.push(report);
                }
            }
            for report in analysis.take_failure_reports() {
                let key = report.to_string();
                if self.seen_failures.insert(key) {
                    self.failures.push(report);
                }
            }
        }
        // Analyses had their chance to discharge protocol obligations
        // (query servers close client registrations in their finalize);
        // anything this rank still holds open is a leak.
        sanitizer::check_obligations("Bridge::finalize");
        let snap = self.local_snapshot();
        let tagged: Vec<FailureEntry> = self
            .failures
            .iter()
            .map(|f| FailureEntry {
                rank: comm.rank(),
                kind: f.kind().to_string(),
                detail: f.to_string(),
            })
            .collect();
        match comm.gather(0, (snap.clone(), tagged.clone())) {
            Some(gathered) => {
                let mut snaps = Vec::with_capacity(gathered.len());
                let mut failures = Vec::new();
                for (s, f) in gathered {
                    snaps.push(s);
                    failures.extend(f);
                }
                RunReport::build(comm.size(), self.steps, failures, &snaps)
            }
            None => RunReport::build(comm.size(), self.steps, tagged, std::slice::from_ref(&snap)),
        }
    }

    /// This rank's observability snapshot: the timing table rendered as
    /// `initialize/…`, `per-step/…`, `finalize/…` spans, merged with
    /// whatever the probe recorded, plus the allocation high-water
    /// gauge.
    fn local_snapshot(&self) -> Snapshot {
        let mut snap = self.probe.snapshot();
        for cat in self.timings.categories() {
            let label = match cat {
                Category::Initialize(l) => format!("initialize/{l}"),
                Category::PerStep(l) => format!("per-step/{l}"),
                Category::Finalize(l) => format!("finalize/{l}"),
            };
            snap.upsert_span(SpanStat::from_samples(label, self.timings.samples(cat)));
        }
        // The allocation high-water mark is a process-global gauge;
        // other concurrently running worlds bleed into it. Skip it on
        // virtual-time (deterministically scheduled) ranks, where
        // reports must be byte-identical across same-seed runs.
        if !probe::time::is_virtual() {
            let peak = probe::alloc::peak_bytes() as u64;
            if peak > 0 {
                set_gauge(&mut snap, probe::GAUGE_ALLOC_PEAK, peak);
            }
        }
        snap
    }

    /// Timing database (valid any time; complete after finalize).
    pub fn timings(&self) -> &TimingDb {
        &self.timings
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Record a non-fatal infrastructure failure (e.g. a writer lost in
    /// transit whose stream degraded to end-of-stream). Accepts anything
    /// convertible to [`FailureReport`] — the endpoint crates provide
    /// `From` impls for their record types (dead writers, evictions,
    /// dead members), and plain strings become [`FailureReport::Other`].
    /// The run continues; the report is surfaced so a degraded pipeline
    /// is never mistaken for a healthy one. Duplicates collapse to one.
    pub fn record_failure(&mut self, report: impl Into<FailureReport>) {
        let report = report.into();
        let key = report.to_string();
        if self.seen_failures.insert(key) {
            self.failures.push(report);
        }
    }

    /// Failure reports recorded during the run (empty = healthy).
    pub fn failure_reports(&self) -> &[FailureReport] {
        &self.failures
    }

    /// Turn on the asynchronous offload executor: analyses that report
    /// [`AnalysisAdaptor::supports_offload`] run their communicator-free
    /// local phase on device worker threads against a device-space
    /// snapshot of the publish window, overlapping with the advancing
    /// simulation. Their [`AnalysisAdaptor::complete`] verdicts are
    /// collected at the next sync point (the following
    /// [`Bridge::execute`] or [`Bridge::finalize`]), so steering
    /// arrives one step late — the documented offload latency trade.
    ///
    /// # Panics
    /// Panics after [`Bridge::finalize`], or if `workers` is 0.
    pub fn enable_offload(&mut self, cfg: OffloadConfig) {
        assert!(!self.finalized, "bridge already finalized");
        assert!(cfg.workers >= 1, "offload needs at least one worker");
        if self.offload.is_some() {
            return;
        }
        let mut jobs = Vec::with_capacity(cfg.workers);
        let mut handles = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            let (tx, rx) = mpsc::channel::<Job>();
            let device = cfg.device;
            handles.push(std::thread::spawn(move || worker_loop(rx, device)));
            jobs.push(tx);
        }
        let obligation = sanitizer::open_obligation(
            "offload-workers",
            &format!("offload pool ({} workers)", cfg.workers),
        );
        self.offload = Some(OffloadExec {
            cfg,
            jobs,
            handles,
            next: 0,
            in_flight: Vec::new(),
            obligation,
            slots: [None, None],
            busy_seconds: 0.0,
            hidden_seconds: 0.0,
        });
    }

    /// Whether the offload executor is currently running.
    pub fn offload_enabled(&self) -> bool {
        self.offload.is_some()
    }

    /// Measured overlap efficiency so far: the fraction of device busy
    /// time hidden behind the advancing simulation (1.0 = every device
    /// second overlapped; 0.0 = fully synchronous). `None` until the
    /// executor has finished at least one job.
    pub fn overlap_efficiency(&self) -> Option<f64> {
        let (busy, hidden) = match &self.offload {
            Some(exec) => (exec.busy_seconds, exec.hidden_seconds),
            None => self.overlap?,
        };
        (busy > 0.0).then(|| hidden / busy)
    }

    /// Sync point: block for every in-flight analysis, run its
    /// `complete` phase on the rank thread (collectives allowed here —
    /// in-flight order is dispatch order, identical on every rank), and
    /// put the analysis back in its slot. Time spent blocking is the
    /// *exposed* portion of that job's device time; the remainder was
    /// hidden behind the simulation.
    fn drain_offload(&mut self, comm: &Comm, stop: &mut Option<StopInfo>) {
        let Some(exec) = self.offload.as_mut() else {
            return;
        };
        let device = exec.cfg.device;
        let in_flight = std::mem::take(&mut exec.in_flight);
        if in_flight.is_empty() {
            return;
        }
        let mut busy = 0.0;
        let mut hidden = 0.0;
        for flight in in_flight {
            let wait = Wall::now();
            let done = match flight.reply.recv() {
                Ok(done) => done,
                Err(_) => {
                    // A worker died mid-job (panicked analysis). The
                    // slot stays empty; degrade loudly, not silently.
                    self.record_failure(format!(
                        "offload: worker lost before returning '{}'",
                        flight.name
                    ));
                    continue;
                }
            };
            let waited = wait.elapsed().as_secs_f64();
            busy += done.busy_seconds;
            hidden += (done.busy_seconds - waited).max(0.0);
            let mut analysis = done.analysis;
            // Completion still reads device-resident pending state.
            let verdict = {
                let _device = datamodel::enter_space(MemorySpace::DeviceSim(device));
                self.timings
                    .timed(Category::PerStep(flight.name.clone()), || {
                        analysis.complete(comm)
                    })
            };
            for failure in analysis.take_failures() {
                let report = FailureReport::Analysis {
                    analysis: flight.name.clone(),
                    detail: failure,
                };
                let key = report.to_string();
                if self.seen_failures.insert(key) {
                    self.failures.push(report);
                }
            }
            for report in analysis.take_failure_reports() {
                let key = report.to_string();
                if self.seen_failures.insert(key) {
                    self.failures.push(report);
                }
            }
            if let Steering::Stop { reason } = verdict {
                stop.get_or_insert_with(|| StopInfo {
                    analysis: flight.name.clone(),
                    reason,
                });
            }
            self.analyses[flight.index] = Some(analysis);
        }
        if let Some(exec) = self.offload.as_mut() {
            exec.busy_seconds += busy;
            exec.hidden_seconds += hidden;
        }
    }

    /// Dispatch every offload-capable analysis against a device-space
    /// snapshot of this step's publish window. One snapshot (one
    /// explicit host→device transfer) is shared by all jobs; the
    /// double-buffered slot keeps it alive while the next step's fills.
    fn dispatch_offload(&mut self, data: &dyn DataAdaptor) {
        let Some(exec) = self.offload.as_ref() else {
            return;
        };
        let todo: Vec<usize> = (0..self.analyses.len())
            .filter(|&i| {
                self.analyses[i]
                    .as_ref()
                    .is_some_and(|a| a.supports_offload())
            })
            .collect();
        if todo.is_empty() {
            return;
        }
        let device = exec.cfg.device;
        let lanes = exec.jobs.clone();
        let mut next = exec.next;
        let payload = {
            let _h2d = self.probe.span("per-step/offload/h2d");
            Arc::new(data.full_mesh().snapshot_in(MemorySpace::DeviceSim(device)))
        };
        self.probe
            .bulk(COUNTER_H2D, 1, 1, payload.payload_bytes() as u64);
        let mut in_flight = Vec::with_capacity(todo.len());
        let time = data.time();
        let step = data.step();
        for index in todo {
            let Some(analysis) = self.analyses[index].take() else {
                continue;
            };
            let name = analysis.name().to_string();
            let (reply_tx, reply_rx) = mpsc::channel();
            let job = Job {
                analysis,
                payload: Arc::clone(&payload),
                time,
                step,
                probe: self.probe.clone(),
                reply: reply_tx,
            };
            let lane = next % lanes.len();
            next += 1;
            match lanes[lane].send(job) {
                Ok(()) => in_flight.push(InFlight {
                    index,
                    name,
                    reply: reply_rx,
                }),
                Err(mpsc::SendError(job)) => {
                    // Worker gone: keep the analysis resident and fall
                    // back to running it synchronously next step.
                    self.record_failure(format!(
                        "offload: worker lane {lane} closed; '{name}' kept on host"
                    ));
                    self.analyses[index] = Some(job.analysis);
                }
            }
        }
        if let Some(exec) = self.offload.as_mut() {
            exec.next = next;
            exec.in_flight.extend(in_flight);
            exec.slots[(self.steps % 2) as usize] = Some(payload);
        }
    }

    /// Stop the executor: record the final overlap tallies, close the
    /// job lanes (workers exit their recv loop), and join the threads.
    fn shutdown_offload(&mut self) {
        let Some(exec) = self.offload.take() else {
            return;
        };
        debug_assert!(exec.in_flight.is_empty(), "drain before shutdown");
        // Skip the gauge on virtual-time ranks: wall-clock overlap is
        // nondeterministic and reports must stay byte-identical there.
        if exec.busy_seconds > 0.0 && !probe::time::is_virtual() {
            let permille = ((exec.hidden_seconds / exec.busy_seconds) * 1000.0).round() as u64;
            self.probe.gauge_max(GAUGE_OVERLAP_PERMILLE, permille);
        }
        self.overlap = Some((exec.busy_seconds, exec.hidden_seconds));
        drop(exec.jobs);
        for handle in exec.handles {
            let _ = handle.join();
        }
        sanitizer::close_obligation(exec.obligation);
    }
}

/// Raise (or insert) a gauge in a snapshot, keeping name order.
fn set_gauge(snap: &mut Snapshot, name: &str, value: u64) {
    match snap.gauges.binary_search_by(|g| g.name.as_str().cmp(name)) {
        Ok(i) => snap.gauges[i].max = snap.gauges[i].max.max(value),
        Err(i) => snap.gauges.insert(
            i,
            GaugeStat {
                name: name.to_string(),
                max: value,
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptor::{Association, InMemoryAdaptor};
    use crate::analysis::descriptive::DescriptiveStats;
    use crate::analysis::histogram::HistogramAnalysis;
    use datamodel::{DataArray, DataSet, Extent, ImageData};
    use minimpi::World;

    fn adaptor(step: u64) -> InMemoryAdaptor {
        let e = Extent::whole([4, 1, 1]);
        let mut g = ImageData::new(e, e);
        g.add_point_array(DataArray::owned("data", 1, vec![1.0, 2.0, 3.0, 4.0]));
        InMemoryAdaptor::new(DataSet::Image(g), step as f64, step)
    }

    #[test]
    fn bridge_runs_multiple_analyses_per_step() {
        World::run(2, |comm| {
            let hist = HistogramAnalysis::new("data", 4);
            let hist_res = hist.results_handle();
            let stats = DescriptiveStats::new("data");
            let stats_res = stats.results_handle();
            let mut bridge = Bridge::new();
            bridge.register(Box::new(hist));
            bridge.register(Box::new(stats));
            assert_eq!(bridge.num_analyses(), 2);

            for s in 0..3 {
                assert!(bridge.execute(&adaptor(s), comm).should_continue());
            }
            let report = bridge.finalize(comm);

            assert_eq!(bridge.steps(), 3);
            assert_eq!(report.steps, 3);
            assert_eq!(report.ranks, 2);
            if comm.rank() == 0 {
                assert!(hist_res.lock().is_some());
            }
            assert!(stats_res.lock().is_some());
            // Timing database captured 3 per-step samples per analysis,
            // and the report carries them as per-step phases.
            let t = bridge.timings();
            assert_eq!(t.per_step("histogram").unwrap().count, 3);
            assert_eq!(t.per_step("descriptive-stats").unwrap().count, 3);
            assert!(t.finalize("histogram").is_some());
            let phase = report.phase("per-step/histogram").expect("phase present");
            let expected = if comm.rank() == 0 {
                3 * comm.size() as u64
            } else {
                3 // non-root aggregates its own snapshot only
            };
            assert_eq!(phase.samples, expected);
            assert!(phase.max_s >= phase.min_s);
        });
    }

    #[test]
    #[allow(deprecated)] // coverage for the legacy bulk-registration shim
    fn register_many_registers_a_batch_of_consumers() {
        World::run(1, |comm| {
            let mut bridge = Bridge::new();
            let batch: Vec<Box<dyn AnalysisAdaptor>> = (0..8)
                .map(|i| {
                    Box::new(HistogramAnalysis::new("data", 4 + i)) as Box<dyn AnalysisAdaptor>
                })
                .collect();
            bridge.register_many(batch);
            assert_eq!(bridge.num_analyses(), 8);
            assert!(bridge.execute(&adaptor(0), comm).should_continue());
            let report = bridge.finalize(comm);
            assert_eq!(report.steps, 1);
        });
    }

    #[test]
    fn empty_bridge_is_near_free() {
        World::run(1, |comm| {
            let mut bridge = Bridge::new();
            let t0 = std::time::Instant::now();
            for s in 0..1000 {
                bridge.execute(&adaptor(s), comm);
            }
            // 1000 baseline bridge calls complete in far under a second:
            // the "almost nonexistent" instrumentation overhead claim,
            // with the probe layer compiled in but switched off.
            assert!(t0.elapsed().as_secs_f64() < 1.0);
        });
    }

    #[test]
    fn offload_matches_synchronous_execution_bitwise() {
        World::run(4, |comm| {
            // Synchronous reference pipeline.
            let hist = HistogramAnalysis::new("data", 8);
            let href = hist.results_handle();
            let stats = DescriptiveStats::new("data");
            let sref = stats.results_handle();
            let mut sync = Bridge::new();
            sync.register(Box::new(hist));
            sync.register(Box::new(stats));

            // The same pipeline, offloaded to simulated-device workers.
            let hist = HistogramAnalysis::new("data", 8);
            let hoff = hist.results_handle();
            let stats = DescriptiveStats::new("data");
            let soff = stats.results_handle();
            let mut off = Bridge::new();
            off.register(Box::new(hist));
            off.register(Box::new(stats));
            off.enable_offload(OffloadConfig::default());
            assert!(off.offload_enabled());

            for s in 0..4 {
                assert!(sync.execute(&adaptor(s), comm).should_continue());
                assert!(off.execute(&adaptor(s), comm).should_continue());
            }
            sync.finalize(comm);
            off.finalize(comm);
            assert!(!off.offload_enabled());

            // The offload split is the synchronous path run on another
            // thread: results are bitwise identical, not merely close.
            assert_eq!(*href.lock(), *hoff.lock());
            assert_eq!(*sref.lock(), *soff.lock());
            let eff = off.overlap_efficiency().expect("device did work");
            assert!((0.0..=1.0).contains(&eff), "efficiency {eff} out of range");
        });
    }

    #[test]
    fn offloaded_stop_arrives_at_the_next_sync_point() {
        struct DeferredStop {
            seen: Option<u64>,
        }
        impl AnalysisAdaptor for DeferredStop {
            fn name(&self) -> &str {
                "deferred-stopper"
            }
            fn execute(&mut self, data: &dyn DataAdaptor, comm: &Comm) -> Steering {
                self.execute_local(data, &comm.probe());
                self.complete(comm)
            }
            fn supports_offload(&self) -> bool {
                true
            }
            fn execute_local(&mut self, data: &dyn DataAdaptor, _probe: &probe::Probe) {
                self.seen = Some(data.step());
            }
            fn complete(&mut self, _comm: &Comm) -> Steering {
                match self.seen.take() {
                    Some(s) if s >= 1 => Steering::stop(format!("step {s} over budget")),
                    _ => Steering::Continue,
                }
            }
        }
        World::run(1, |comm| {
            let mut bridge = Bridge::new();
            bridge.register(Box::new(DeferredStop { seen: None }));
            bridge.enable_offload(OffloadConfig {
                device: 1,
                workers: 1,
            });
            // Step 0 dispatches; no verdict yet.
            assert!(bridge.execute(&adaptor(0), comm).should_continue());
            // Step 1 syncs step 0 (Continue) and dispatches step 1.
            assert!(bridge.execute(&adaptor(1), comm).should_continue());
            // Step 2 syncs step 1, whose verdict was Stop: delivered here,
            // one step late — the documented offload latency trade.
            let verdict = bridge.execute(&adaptor(2), comm);
            assert_eq!(verdict, Steering::stop("step 1 over budget"));
            let info = bridge.stop_info().expect("stopper identified");
            assert_eq!(info.analysis, "deferred-stopper");
            bridge.finalize(comm);
        });
    }

    #[test]
    fn last_step_offloaded_verdict_drains_before_the_final_gather() {
        // Regression pin for the finalize ordering contract: a steering
        // verdict issued by the *last* dispatched step lives in the
        // offload executor's one-step-late window when finalize runs,
        // and must be drained into `stopped` / the failure log before
        // the RunReport gather — not lost in shutdown.
        struct LastStepStop {
            seen: Option<u64>,
            last: u64,
        }
        impl AnalysisAdaptor for LastStepStop {
            fn name(&self) -> &str {
                "last-step-stopper"
            }
            fn execute(&mut self, data: &dyn DataAdaptor, comm: &Comm) -> Steering {
                self.execute_local(data, &comm.probe());
                self.complete(comm)
            }
            fn supports_offload(&self) -> bool {
                true
            }
            fn execute_local(&mut self, data: &dyn DataAdaptor, _probe: &probe::Probe) {
                self.seen = Some(data.step());
            }
            fn complete(&mut self, _comm: &Comm) -> Steering {
                match self.seen.take() {
                    Some(s) if s == self.last => Steering::stop(format!("stop pinned at step {s}")),
                    _ => Steering::Continue,
                }
            }
            fn take_failure_reports(&mut self) -> Vec<FailureReport> {
                Vec::new()
            }
        }
        World::run(2, |comm| {
            let mut bridge = Bridge::new();
            bridge.register(Box::new(LastStepStop {
                seen: None,
                last: 2,
            }));
            bridge.enable_offload(OffloadConfig {
                device: 1,
                workers: 1,
            });
            // Three steps; step 2's verdict is still in flight when the
            // loop ends, so only finalize's drain can deliver it.
            for s in 0..3 {
                assert!(bridge.execute(&adaptor(s), comm).should_continue());
            }
            assert!(bridge.stop_info().is_none(), "verdict must not be early");
            let report = bridge.finalize(comm);
            let info = bridge.stop_info().expect("last-step verdict drained");
            assert_eq!(info.analysis, "last-step-stopper");
            assert_eq!(info.reason, "stop pinned at step 2");
            // The gather ran *after* the drain: the report reflects all
            // three steps and the executor is fully shut down.
            assert!(!bridge.offload_enabled());
            assert_eq!(report.steps, 3);
        });
    }

    #[test]
    fn steering_stop_propagates_with_reason() {
        struct StopAfter(u64);
        impl AnalysisAdaptor for StopAfter {
            fn name(&self) -> &str {
                "stopper"
            }
            fn execute(&mut self, data: &dyn DataAdaptor, _comm: &Comm) -> Steering {
                if data.step() < self.0 {
                    Steering::Continue
                } else {
                    Steering::stop(format!("step budget {} exhausted", self.0))
                }
            }
        }
        World::run(1, |comm| {
            let mut bridge = Bridge::new();
            bridge.register(Box::new(StopAfter(2)));
            assert!(bridge.execute(&adaptor(0), comm).should_continue());
            assert!(bridge.stop_info().is_none());
            assert!(bridge.execute(&adaptor(1), comm).should_continue());
            let verdict = bridge.execute(&adaptor(2), comm);
            assert_eq!(verdict, Steering::stop("step budget 2 exhausted"));
            let info = bridge.stop_info().expect("stopper identified");
            assert_eq!(info.analysis, "stopper");
            assert_eq!(info.reason, "step budget 2 exhausted");
        });
    }

    #[test]
    fn analysis_failures_drain_into_the_report() {
        struct Flaky;
        impl AnalysisAdaptor for Flaky {
            fn name(&self) -> &str {
                "flaky"
            }
            fn execute(&mut self, _data: &dyn DataAdaptor, _comm: &Comm) -> Steering {
                Steering::Continue
            }
            fn take_failures(&mut self) -> Vec<String> {
                vec!["lost connection".to_string()]
            }
        }
        World::run(1, |comm| {
            let mut bridge = Bridge::new();
            bridge.register(Box::new(Flaky));
            for s in 0..3 {
                bridge.execute(&adaptor(s), comm);
            }
            // The same failure every step collapses to one report.
            let failures = bridge.failure_reports();
            assert_eq!(failures.len(), 1);
            assert_eq!(failures[0].kind(), "analysis");
            assert_eq!(failures[0].to_string(), "flaky: lost connection");
            let report = bridge.finalize(comm);
            assert_eq!(report.failures.len(), 1);
            assert_eq!(report.failures[0].rank, 0);
            assert_eq!(report.failures[0].kind, "analysis");
            assert_eq!(report.failures[0].detail, "flaky: lost connection");
        });
    }

    #[test]
    #[should_panic(expected = "already finalized")]
    fn execute_after_finalize_panics() {
        World::run(1, |comm| {
            let mut bridge = Bridge::new();
            bridge.finalize(comm);
            bridge.execute(&adaptor(0), comm);
        });
    }

    #[test]
    fn init_cost_recording() {
        World::run(1, |_comm| {
            let mut bridge = Bridge::new();
            bridge
                .register(Box::new(DescriptiveStats::with_association(
                    "data",
                    Association::Point,
                )))
                .init_cost(1.25);
            let s = bridge.timings().initialize("descriptive-stats").unwrap();
            assert_eq!(s.total, 1.25);
        });
    }

    #[test]
    fn probed_bridge_reports_spans_and_collective_counters() {
        World::run(4, |comm| {
            let mut bridge = Bridge::with_probe(probe::enabled());
            bridge.register(Box::new(DescriptiveStats::new("data")));
            for s in 0..5 {
                bridge.execute(&adaptor(s), comm);
            }
            let report = bridge.finalize(comm);
            // The bridge span wraps every step on every rank. Rank 0
            // aggregates the gathered snapshots; other ranks see their
            // own snapshot only.
            let bspan = report.phase("per-step/bridge").expect("bridge span");
            // Descriptive stats allreduce (reduce + bcast) each step:
            // the counters flowed from the communicator into the report.
            let c = report.counter("minimpi/reduce").expect("reduce counted");
            if comm.rank() == 0 {
                assert_eq!(bspan.ranks, comm.size());
                assert_eq!(bspan.samples, 5 * comm.size() as u64);
                assert_eq!(c.calls, 5 * comm.size() as u64);
                assert!(c.bytes > 0, "reduce moved bytes");
            } else {
                assert_eq!(bspan.ranks, 1);
                assert_eq!(bspan.samples, 5);
                assert_eq!(c.calls, 5);
            }
        });
    }

    #[test]
    fn unprobed_finalize_still_reports_timings() {
        World::run(2, |comm| {
            let mut bridge = Bridge::new();
            bridge.register(Box::new(DescriptiveStats::new("data")));
            bridge.execute(&adaptor(0), comm);
            let report = bridge.finalize(comm);
            assert!(report.phase("per-step/descriptive-stats").is_some());
            assert!(report.phase("initialize/descriptive-stats").is_some());
            // No probe → no collective counters, but timings survive.
            assert!(report.counter("minimpi/allreduce").is_none());
        });
    }
}
