//! Analysis adaptors: the consumer-side half of the SENSEI interface.
//!
//! An analysis adaptor wraps anything that consumes simulation data — a
//! few-line statistic or an entire infrastructure (the `catalyst`,
//! `libsim`, `adios`, and `glean` crates each implement this trait).
//! Because the paper treats infrastructures *as analyses under SENSEI*,
//! coupling a simulation to all of them requires only adding adaptors to
//! the bridge.

pub mod autocorrelation;
pub mod descriptive;
pub mod histogram;

use crate::adaptor::DataAdaptor;
use minimpi::Comm;

/// The verdict an analysis returns from [`AnalysisAdaptor::execute`]:
/// the computational-steering hook, now carrying *why* a stop was
/// requested instead of a bare `false`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Steering {
    /// Keep simulating.
    Continue,
    /// Request that the simulation stop.
    Stop {
        /// Human-readable cause ("threshold crossed at step 12", …).
        reason: String,
    },
}

impl Steering {
    /// Shorthand for [`Steering::Stop`] with the given reason.
    pub fn stop(reason: impl Into<String>) -> Self {
        Steering::Stop {
            reason: reason.into(),
        }
    }

    /// `true` unless this verdict requests a stop.
    pub fn should_continue(&self) -> bool {
        matches!(self, Steering::Continue)
    }
}

/// The analysis-side adaptor contract.
pub trait AnalysisAdaptor: Send {
    /// Short identifier used in timing reports ("histogram",
    /// "catalyst-slice", …).
    fn name(&self) -> &str;

    /// Consume the current step's data. Returns a [`Steering`] verdict;
    /// analyses that never steer return [`Steering::Continue`].
    ///
    /// Collective: every rank of `comm` calls `execute` each time the
    /// bridge runs.
    fn execute(&mut self, data: &dyn DataAdaptor, comm: &Comm) -> Steering;

    /// One-time teardown; global reductions that produce final results
    /// (e.g. the autocorrelation top-k) happen here.
    fn finalize(&mut self, _comm: &Comm) {}

    /// Drain non-fatal failure reports accumulated since the last call
    /// (e.g. an array the adaptor could not provide, a writer lost in
    /// transit). The bridge drains this after every `execute` and
    /// `finalize` and folds the strings into its failure log, so
    /// degraded pipelines surface without each analysis holding a
    /// bridge handle. Default: no failures.
    fn take_failures(&mut self) -> Vec<String> {
        Vec::new()
    }
}

/// A per-leaf access path to one scalar field, classified once so the
/// streaming analyses can run their hot loops over borrowed slices.
pub(crate) enum LeafView<'a> {
    /// Zero-copy: the field as a borrowed `f64` slice, plus the leaf's
    /// ghost flags (when present) as a borrowed byte slice. This is the
    /// path simulation data takes — no element materializes anywhere.
    Direct(&'a [f64], Option<&'a [u8]>),
    /// Type-erased fallback for non-`f64` or multi-component arrays (or
    /// exotically-typed ghost arrays): per-element widening getters.
    Indirect(&'a datamodel::Attributes, &'a datamodel::DataArray),
}

/// Is tuple `i` a ghost, given a leaf's borrowed ghost flags?
pub(crate) fn ghost_at(ghosts: Option<&[u8]>, i: usize) -> bool {
    ghosts.is_some_and(|g| g[i] != 0)
}

/// Classify every leaf of `mesh` carrying the named array. Views borrow
/// the mesh, so the caller streams the simulation's buffers in place.
pub(crate) fn leaf_views<'a>(
    mesh: &'a datamodel::DataSet,
    assoc: crate::adaptor::Association,
    array: &str,
) -> Vec<LeafView<'a>> {
    let mut out = Vec::new();
    for leaf in mesh.leaves() {
        let attrs = match assoc {
            crate::adaptor::Association::Point => leaf.point_data(),
            crate::adaptor::Association::Cell => leaf.cell_data(),
        };
        let Some(attrs) = attrs else { continue };
        let Some(arr) = attrs.get(array) else {
            continue;
        };
        // Ghost flags: `Some(None)` = no ghosts, `Some(Some(_))` = plain
        // u8 flags, `None` = ghosts exist but need the indirect path.
        let ghosts = match attrs.ghosts() {
            None => Some(None),
            Some(g) if g.num_components() == 1 => g.typed_slice::<u8>().map(Some),
            Some(_) => None,
        };
        let direct = (arr.num_components() == 1)
            .then(|| arr.typed_slice::<f64>())
            .flatten()
            .zip(ghosts);
        match direct {
            Some((vals, gh)) => out.push(LeafView::Direct(vals, gh)),
            None => out.push(LeafView::Indirect(attrs, arr)),
        }
    }
    out
}

/// Sum a field's values over the non-ghost tuples of every leaf of a
/// dataset — a helper shared by the built-in analyses.
pub fn for_each_value(
    data: &dyn DataAdaptor,
    assoc: crate::adaptor::Association,
    array: &str,
    mut f: impl FnMut(f64),
) -> usize {
    let mut mesh = data.mesh();
    if data.add_array(&mut mesh, assoc, array).is_err() {
        return 0;
    }
    // Pull the ghost-marking array too (if the producer has one) so ghost
    // tuples can be blanked.
    let _ = data.add_array(&mut mesh, assoc, datamodel::GHOST_ARRAY_NAME);
    let mut n = 0;
    for leaf in mesh.leaves() {
        let attrs = match assoc {
            crate::adaptor::Association::Point => leaf.point_data(),
            crate::adaptor::Association::Cell => leaf.cell_data(),
        };
        let Some(attrs) = attrs else { continue };
        let Some(arr) = attrs.get(array) else {
            continue;
        };
        for t in 0..arr.num_tuples() {
            if attrs.is_ghost(t) {
                continue;
            }
            f(arr.get(t, 0));
            n += 1;
        }
    }
    n
}
