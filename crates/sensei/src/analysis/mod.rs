//! Analysis adaptors: the consumer-side half of the SENSEI interface.
//!
//! An analysis adaptor wraps anything that consumes simulation data — a
//! few-line statistic or an entire infrastructure (the `catalyst`,
//! `libsim`, `adios`, and `glean` crates each implement this trait).
//! Because the paper treats infrastructures *as analyses under SENSEI*,
//! coupling a simulation to all of them requires only adding adaptors to
//! the bridge.

pub mod autocorrelation;
pub mod descriptive;
pub mod histogram;

use crate::adaptor::DataAdaptor;
use minimpi::Comm;

/// The analysis-side adaptor contract.
pub trait AnalysisAdaptor: Send {
    /// Short identifier used in timing reports ("histogram",
    /// "catalyst-slice", …).
    fn name(&self) -> &str;

    /// Consume the current step's data. Returns `false` to request that
    /// the simulation stop (computational steering hook); analyses that
    /// never steer return `true`.
    ///
    /// Collective: every rank of `comm` calls `execute` each time the
    /// bridge runs.
    fn execute(&mut self, data: &dyn DataAdaptor, comm: &Comm) -> bool;

    /// One-time teardown; global reductions that produce final results
    /// (e.g. the autocorrelation top-k) happen here.
    fn finalize(&mut self, _comm: &Comm) {}
}

/// Sum a field's values over the non-ghost tuples of every leaf of a
/// dataset — a helper shared by the built-in analyses.
pub fn for_each_value(
    data: &dyn DataAdaptor,
    assoc: crate::adaptor::Association,
    array: &str,
    mut f: impl FnMut(f64),
) -> usize {
    let mut mesh = data.mesh();
    if !data.add_array(&mut mesh, assoc, array) {
        return 0;
    }
    // Pull the ghost-marking array too (if the producer has one) so ghost
    // tuples can be blanked.
    let _ = data.add_array(&mut mesh, assoc, datamodel::GHOST_ARRAY_NAME);
    let mut n = 0;
    for leaf in mesh.leaves() {
        let attrs = match assoc {
            crate::adaptor::Association::Point => leaf.point_data(),
            crate::adaptor::Association::Cell => leaf.cell_data(),
        };
        let Some(attrs) = attrs else { continue };
        let Some(arr) = attrs.get(array) else { continue };
        for t in 0..arr.num_tuples() {
            if attrs.is_ghost(t) {
                continue;
            }
            f(arr.get(t, 0));
            n += 1;
        }
    }
    n
}
