//! Analysis adaptors: the consumer-side half of the SENSEI interface.
//!
//! An analysis adaptor wraps anything that consumes simulation data — a
//! few-line statistic or an entire infrastructure (the `catalyst`,
//! `libsim`, `adios`, and `glean` crates each implement this trait).
//! Because the paper treats infrastructures *as analyses under SENSEI*,
//! coupling a simulation to all of them requires only adding adaptors to
//! the bridge.

pub mod autocorrelation;
pub mod descriptive;
pub mod histogram;

use crate::adaptor::DataAdaptor;
use minimpi::Comm;

/// The verdict an analysis returns from [`AnalysisAdaptor::execute`]:
/// the computational-steering hook, now carrying *why* a stop was
/// requested instead of a bare `false`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Steering {
    /// Keep simulating.
    Continue,
    /// Request that the simulation stop.
    Stop {
        /// Human-readable cause ("threshold crossed at step 12", …).
        reason: String,
    },
}

impl Steering {
    /// Shorthand for [`Steering::Stop`] with the given reason.
    pub fn stop(reason: impl Into<String>) -> Self {
        Steering::Stop {
            reason: reason.into(),
        }
    }

    /// `true` unless this verdict requests a stop.
    pub fn should_continue(&self) -> bool {
        matches!(self, Steering::Continue)
    }
}

/// The analysis-side adaptor contract.
///
/// # The offload split
///
/// An analysis that opts into asynchronous device offload
/// ([`AnalysisAdaptor::supports_offload`]) divides its per-step work
/// into two phases:
///
/// * [`execute_local`](AnalysisAdaptor::execute_local) — everything
///   that needs only this rank's data. **No communicator**: the bridge
///   runs this phase on a device worker thread while the simulation
///   advances, and minimpi's `MPI_THREAD_FUNNELED` discipline forbids
///   touching a `Comm` off the rank thread.
/// * [`complete`](AnalysisAdaptor::complete) — the collectives and the
///   final verdict, run on the rank thread at the next sync point.
///
/// Offloadable analyses implement `execute` as exactly
/// `execute_local` + `complete`, so the synchronous path and the
/// offloaded path run the *same code over the same values* and their
/// results are bitwise identical — the conformance suite pins this.
pub trait AnalysisAdaptor: Send {
    /// Short identifier used in timing reports ("histogram",
    /// "catalyst-slice", …).
    fn name(&self) -> &str;

    /// Consume the current step's data. Returns a [`Steering`] verdict;
    /// analyses that never steer return [`Steering::Continue`].
    ///
    /// Collective: every rank of `comm` calls `execute` each time the
    /// bridge runs.
    fn execute(&mut self, data: &dyn DataAdaptor, comm: &Comm) -> Steering;

    /// Can this analysis run its local phase off the rank thread?
    /// `true` means [`execute`](AnalysisAdaptor::execute) is the
    /// composition `execute_local` + `complete` and the bridge's
    /// offload executor may split it across threads. Default: `false`
    /// (the analysis only supports the synchronous path).
    fn supports_offload(&self) -> bool {
        false
    }

    /// The communicator-free local phase: read the step's data, do the
    /// per-rank work, and stash whatever [`complete`]
    /// (AnalysisAdaptor::complete) needs. Runs on a device worker
    /// thread in offload mode (inside the payload's memory space), or
    /// inline on the rank thread in synchronous mode. `probe` is the
    /// bridge's observability handle (worker threads cannot reach it
    /// through a `Comm`). Default: nothing — only meaningful when
    /// [`supports_offload`](AnalysisAdaptor::supports_offload) is true.
    fn execute_local(&mut self, data: &dyn DataAdaptor, probe: &probe::Probe) {
        let _ = (data, probe);
    }

    /// The sync-point phase: run the collectives over the state
    /// [`execute_local`](AnalysisAdaptor::execute_local) stashed and
    /// return the step's [`Steering`] verdict. Always called on the
    /// rank thread. Default: [`Steering::Continue`].
    fn complete(&mut self, _comm: &Comm) -> Steering {
        Steering::Continue
    }

    /// One-time teardown; global reductions that produce final results
    /// (e.g. the autocorrelation top-k) happen here.
    fn finalize(&mut self, _comm: &Comm) {}

    /// Drain non-fatal failure reports accumulated since the last call
    /// (e.g. an array the adaptor could not provide, a writer lost in
    /// transit). The bridge drains this after every `execute` and
    /// `finalize` and folds the strings into its failure log, so
    /// degraded pipelines surface without each analysis holding a
    /// bridge handle. Default: no failures.
    fn take_failures(&mut self) -> Vec<String> {
        Vec::new()
    }

    /// Drain *typed* failure reports. Like
    /// [`take_failures`](AnalysisAdaptor::take_failures) but for
    /// adaptors that can say exactly what broke (an evicted query
    /// client, a dead steering peer) instead of flattening the
    /// forensics into a string — the bridge records these under their
    /// own `kind` tag rather than as `analysis` failures. Default: no
    /// reports.
    fn take_failure_reports(&mut self) -> Vec<crate::failure::FailureReport> {
        Vec::new()
    }
}

/// A per-leaf access path to one scalar field, classified once so the
/// streaming analyses can run their hot loops over borrowed slices.
pub(crate) enum LeafView<'a> {
    /// Zero-copy: the field as a borrowed `f64` slice, plus the leaf's
    /// ghost flags (when present) as a borrowed byte slice. This is the
    /// path simulation data takes — no element materializes anywhere.
    Direct(&'a [f64], Option<&'a [u8]>),
    /// Type-erased fallback for non-`f64` or multi-component arrays (or
    /// exotically-typed ghost arrays): per-element widening getters.
    Indirect(&'a datamodel::Attributes, &'a datamodel::DataArray),
}

/// Is tuple `i` a ghost, given a leaf's borrowed ghost flags?
pub(crate) fn ghost_at(ghosts: Option<&[u8]>, i: usize) -> bool {
    ghosts.is_some_and(|g| g[i] != 0)
}

/// Classify every leaf of `mesh` carrying the named array. Views borrow
/// the mesh, so the caller streams the simulation's buffers in place.
pub(crate) fn leaf_views<'a>(
    mesh: &'a datamodel::DataSet,
    assoc: crate::adaptor::Association,
    array: &str,
) -> Vec<LeafView<'a>> {
    let mut out = Vec::new();
    for leaf in mesh.leaves() {
        let attrs = match assoc {
            crate::adaptor::Association::Point => leaf.point_data(),
            crate::adaptor::Association::Cell => leaf.cell_data(),
        };
        let Some(attrs) = attrs else { continue };
        let Some(arr) = attrs.get(array) else {
            continue;
        };
        // Space-checked classification: the zero-copy fast path only
        // opens for arrays resident in (or shared with) the thread's
        // execution space; anything else — wrong type, multi-component,
        // or wrong space — takes the indirect path, whose legacy
        // getters report stray cross-space reads to the sanitizer.
        let exec = datamodel::current_space();
        // Ghost flags: `Some(None)` = no ghosts, `Some(Some(_))` = plain
        // u8 flags, `None` = ghosts exist but need the indirect path.
        let ghosts = match attrs.ghosts() {
            None => Some(None),
            Some(g) if g.num_components() == 1 => g.as_slice_in::<u8>(exec).ok().map(Some),
            Some(_) => None,
        };
        let direct = (arr.num_components() == 1)
            .then(|| arr.as_slice_in::<f64>(exec).ok())
            .flatten()
            .zip(ghosts);
        match direct {
            Some((vals, gh)) => out.push(LeafView::Direct(vals, gh)),
            None => out.push(LeafView::Indirect(attrs, arr)),
        }
    }
    out
}

/// Sum a field's values over the non-ghost tuples of every leaf of a
/// dataset — a helper shared by the built-in analyses.
pub fn for_each_value(
    data: &dyn DataAdaptor,
    assoc: crate::adaptor::Association,
    array: &str,
    mut f: impl FnMut(f64),
) -> usize {
    let mut mesh = data.mesh();
    if data.add_array(&mut mesh, assoc, array).is_err() {
        return 0;
    }
    // Pull the ghost-marking array too (if the producer has one) so ghost
    // tuples can be blanked.
    let _ = data.add_array(&mut mesh, assoc, datamodel::GHOST_ARRAY_NAME);
    let mut n = 0;
    for leaf in mesh.leaves() {
        let attrs = match assoc {
            crate::adaptor::Association::Point => leaf.point_data(),
            crate::adaptor::Association::Cell => leaf.cell_data(),
        };
        let Some(attrs) = attrs else { continue };
        let Some(arr) = attrs.get(array) else {
            continue;
        };
        for t in 0..arr.num_tuples() {
            if attrs.is_ghost(t) {
                continue;
            }
            f(arr.get(t, 0));
            n += 1;
        }
    }
    n
}
