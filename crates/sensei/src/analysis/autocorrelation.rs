//! The time-dependent autocorrelation analysis of §3.3.
//!
//! For a signal `f(x)` and integer delay `t`, computes
//! `Σₛ f(x, s) · f(x, s − t')` for every retained delay `t' ∈ 1..=t`,
//! keeping per-cell circular buffers of the last `t` values and running
//! correlations — two buffers of size `O(t·N³)`, exactly the memory
//! profile the paper studies. At finalize, a global reduction finds the
//! top-k correlations per delay; for periodic oscillators those peaks
//! sit at the oscillator centers.

//! Per-step updates *stream*: each leaf's values are read in place
//! through zero-copy borrowed slices (no temporary vector), and cells —
//! whose history/correlation state is disjoint — are chunked across
//! intra-rank threads. Leaves that carry ghost flags, or whose arrays
//! need type widening, fall back to serial streaming.

use minimpi::Comm;
use parking_lot::Mutex;
use std::sync::Arc;

use crate::adaptor::{Association, DataAdaptor};
use crate::analysis::{ghost_at, leaf_views, AnalysisAdaptor, LeafView, Steering};
use crate::exec;
use datamodel::DataSet;

/// Gauge name for the autocorrelation history/correlation buffers
/// (the `O(t·N³)` storage the paper's Fig. 4 studies).
pub const GAUGE_BUFFER_BYTES: &str = "mem/autocorrelation_buffer_bytes";

/// One candidate: correlation value and global cell id.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Peak {
    /// Accumulated correlation.
    pub value: f64,
    /// Global cell identifier.
    pub cell: u64,
}

/// Final result on rank 0: `peaks[lag - 1]` holds the global top-k for
/// that delay, strongest first.
pub type AutocorrelationResult = Vec<Vec<Peak>>;

/// Shared handle to the finalize result.
pub type ResultsHandle = Arc<Mutex<Option<AutocorrelationResult>>>;

/// Autocorrelation analysis adaptor.
pub struct Autocorrelation {
    array: String,
    window: usize,
    k: usize,
    threads: usize,
    /// Circular value history, `cells × window`, lazily sized.
    history: Vec<f64>,
    /// Running correlations, `cells × window`.
    corr: Vec<f64>,
    cells: usize,
    steps_seen: u64,
    /// Global id per local cell, captured on first execute.
    ids: Vec<u64>,
    results: ResultsHandle,
}

impl Autocorrelation {
    /// Track the named point array over a `window`-step delay range,
    /// reporting the global top-`k` peaks per delay at finalize.
    pub fn new(array: impl Into<String>, window: usize, k: usize) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(k > 0, "k must be positive");
        Autocorrelation {
            array: array.into(),
            window,
            k,
            threads: 1,
            history: Vec::new(),
            corr: Vec::new(),
            cells: 0,
            steps_seen: 0,
            ids: Vec::new(),
            results: Arc::new(Mutex::new(None)),
        }
    }

    /// Run the per-step update on `threads` intra-rank threads (`0` =
    /// use every available core). Per-cell state is disjoint and each
    /// cell's accumulation order is fixed, so results are bitwise
    /// identical at any thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// A handle through which rank 0 reads the finalize result.
    pub fn results_handle(&self) -> ResultsHandle {
        Arc::clone(&self.results)
    }

    /// Heap bytes held by the two circular buffers (the paper's memory
    /// subject for Fig. 4).
    pub fn buffer_bytes(&self) -> usize {
        (self.history.capacity() + self.corr.capacity()) * 8
    }

    /// First-step setup: count the non-ghost cells, capture their global
    /// ids, and size the two circular buffers.
    fn capture_layout(&mut self, mesh: &DataSet) {
        let mut ids = Vec::new();
        for leaf in mesh.leaves() {
            let Some(attrs) = leaf.point_data() else {
                continue;
            };
            let Some(arr) = attrs.get(&self.array) else {
                continue;
            };
            for t in 0..arr.num_tuples() {
                if attrs.is_ghost(t) {
                    continue;
                }
                ids.push(global_point_id(leaf, t));
            }
        }
        self.cells = ids.len();
        self.ids = ids;
        self.history = vec![0.0; self.cells * self.window];
        self.corr = vec![0.0; self.cells * self.window];
    }

    /// Serial-path update of one cell's circular history and running
    /// correlations (the same arithmetic the chunked kernel applies).
    fn update_cell(&mut self, cell: usize, v: f64, s: u64) {
        let w = self.window as u64;
        let base = cell * self.window;
        let max_lag = s.min(w);
        for lag in 1..=max_lag {
            let past = self.history[base + ((s - lag) % w) as usize];
            self.corr[base + (lag - 1) as usize] += v * past;
        }
        self.history[base + (s % w) as usize] = v;
    }
}

/// Global id of a leaf's local point `t`: the global structured linear
/// index for image grids (so peaks name true grid cells), or a
/// local-index fallback for other mesh types.
fn global_point_id(leaf: &DataSet, t: usize) -> u64 {
    match leaf {
        DataSet::Image(g) => {
            let p = g.extent.point_at(t);
            g.global_extent.linear_index(p) as u64
        }
        DataSet::Rectilinear(g) => {
            let p = g.extent.point_at(t);
            g.global_extent.linear_index(p) as u64
        }
        _ => t as u64,
    }
}

impl AnalysisAdaptor for Autocorrelation {
    fn name(&self) -> &str {
        "autocorrelation"
    }

    fn execute(&mut self, data: &dyn DataAdaptor, comm: &Comm) -> Steering {
        // The per-step update is already communicator-free (the final
        // reduction lives in `finalize`), so the synchronous path is
        // the offload split run back-to-back.
        self.execute_local(data, &comm.probe());
        self.complete(comm)
    }

    fn supports_offload(&self) -> bool {
        true
    }

    fn execute_local(&mut self, data: &dyn DataAdaptor, probe: &probe::Probe) {
        let _update = probe.span("per-step/autocorrelation/update");
        let mut mesh = data.mesh();
        if data
            .add_array(&mut mesh, Association::Point, &self.array)
            .is_err()
        {
            return;
        }
        let _ = data.add_array(&mut mesh, Association::Point, datamodel::GHOST_ARRAY_NAME);

        let views = leaf_views(&mesh, Association::Point, &self.array);
        let incoming: usize = views
            .iter()
            .map(|view| match view {
                LeafView::Direct(vals, None) => vals.len(),
                LeafView::Direct(vals, Some(gh)) => {
                    (0..vals.len()).filter(|&t| !ghost_at(Some(gh), t)).count()
                }
                LeafView::Indirect(attrs, arr) => (0..arr.num_tuples())
                    .filter(|&t| !attrs.is_ghost(t))
                    .count(),
            })
            .sum();
        if incoming == 0 {
            return;
        }
        if self.cells == 0 {
            self.capture_layout(&mesh);
        }
        assert_eq!(
            incoming, self.cells,
            "autocorrelation: cell count changed mid-run"
        );

        let s = self.steps_seen;
        let w = self.window;
        let mut offset = 0usize;
        for view in &views {
            match view {
                // Ghost-free zero-copy leaf: cells chunk across threads,
                // each worker owning a disjoint window of both buffers.
                LeafView::Direct(vals, None) => {
                    let m = vals.len();
                    let hist = &mut self.history[offset * w..(offset + m) * w];
                    let corr = &mut self.corr[offset * w..(offset + m) * w];
                    exec::zip_chunks_mut(self.threads, m, hist, corr, |range, h, c| {
                        for (li, cell) in range.enumerate() {
                            let v = vals[cell];
                            let base = li * w;
                            let max_lag = s.min(w as u64);
                            for lag in 1..=max_lag {
                                let past = h[base + ((s - lag) % w as u64) as usize];
                                c[base + (lag - 1) as usize] += v * past;
                            }
                            h[base + (s % w as u64) as usize] = v;
                        }
                    });
                    offset += m;
                }
                // Ghost-bearing leaf: serial streaming (the value→cell
                // mapping is prefix-dependent), still no temporary.
                LeafView::Direct(vals, Some(gh)) => {
                    for (t, &v) in vals.iter().enumerate() {
                        if ghost_at(Some(gh), t) {
                            continue;
                        }
                        self.update_cell(offset, v, s);
                        offset += 1;
                    }
                }
                LeafView::Indirect(attrs, arr) => {
                    for t in 0..arr.num_tuples() {
                        if attrs.is_ghost(t) {
                            continue;
                        }
                        self.update_cell(offset, arr.get(t, 0), s);
                        offset += 1;
                    }
                }
            }
        }
        debug_assert_eq!(offset, self.cells);
        self.steps_seen += 1;
        probe.gauge_max(GAUGE_BUFFER_BYTES, self.buffer_bytes() as u64);
    }

    fn finalize(&mut self, comm: &Comm) {
        let probe = comm.probe();
        let _reduce = probe.span("finalize/autocorrelation/reduce");
        // Local top-k per lag (§3.3's final global reduction)…
        let mut local: Vec<Vec<Peak>> = Vec::with_capacity(self.window);
        for lag in 0..self.window {
            let mut peaks: Vec<Peak> = (0..self.cells)
                .map(|i| Peak {
                    value: self.corr[i * self.window + lag],
                    cell: self.ids.get(i).copied().unwrap_or(i as u64),
                })
                .collect();
            peaks.sort_by(|a, b| b.value.total_cmp(&a.value));
            peaks.truncate(self.k);
            local.push(peaks);
        }
        // …merged up a binomial tree, re-truncating to k at every level:
        // O(k·window·log p) data movement instead of gathering every
        // rank's candidates to root.
        let k = self.k;
        let merged = comm.reduce(0, local, move |mut a, b| {
            for (lag, peaks) in b.into_iter().enumerate() {
                a[lag].extend(peaks);
                a[lag].sort_by(|x, y| y.value.total_cmp(&x.value));
                a[lag].truncate(k);
            }
            a
        });
        if let Some(global) = merged {
            *self.results.lock() = Some(global);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptor::InMemoryAdaptor;
    use datamodel::{DataArray, DataSet, Extent, ImageData};
    use minimpi::World;

    fn adaptor(values: Vec<f64>, step: u64) -> InMemoryAdaptor {
        let n = values.len();
        let e = Extent::whole([n, 1, 1]);
        let mut g = ImageData::new(e, e);
        g.add_point_array(DataArray::owned("data", 1, values));
        InMemoryAdaptor::new(DataSet::Image(g), step as f64, step)
    }

    #[test]
    fn constant_signal_accumulates_linear_correlation() {
        World::run(1, |comm| {
            let mut ac = Autocorrelation::new("data", 2, 1);
            let res = ac.results_handle();
            for s in 0..5 {
                ac.execute(&adaptor(vec![2.0, 0.0], s), comm);
            }
            ac.finalize(comm);
            let r = res.lock().clone().unwrap();
            // Lag 1: steps 1..4 contribute 2*2 = 4 each → 16.
            assert_eq!(r[0][0].value, 16.0);
            assert_eq!(r[0][0].cell, 0, "constant cell is the peak");
            // Lag 2: steps 2..4 → 12.
            assert_eq!(r[1][0].value, 12.0);
        });
    }

    #[test]
    fn periodic_signal_peaks_at_its_period() {
        World::run(1, |comm| {
            // Period-4 signal: correlation at lag 4 ≫ lag 2 (anti-phase).
            let mut ac = Autocorrelation::new("data", 4, 1);
            let res = ac.results_handle();
            for s in 0..64u64 {
                let v = (std::f64::consts::TAU * s as f64 / 4.0).cos();
                ac.execute(&adaptor(vec![v], s), comm);
            }
            ac.finalize(comm);
            let r = res.lock().clone().unwrap();
            let lag2 = r[1][0].value;
            let lag4 = r[3][0].value;
            assert!(lag4 > 10.0, "lag-4 correlation strong: {lag4}");
            assert!(lag2 < -10.0, "lag-2 anti-correlated: {lag2}");
        });
    }

    #[test]
    fn identifies_oscillating_cell_across_ranks() {
        World::run(4, |comm| {
            // Only rank 2's cell oscillates; others are silent.
            let mut ac = Autocorrelation::new("data", 3, 2);
            let res = ac.results_handle();
            for s in 0..30u64 {
                let v = if comm.rank() == 2 {
                    (s as f64 * 0.7).sin() * 3.0
                } else {
                    0.0
                };
                // 4-cell global grid; each rank holds one cell.
                let e = Extent::whole([5, 2, 2]);
                let local = datamodel::partition_extent(&e, [4, 1, 1], comm.rank());
                let mut g = ImageData::new(local, e);
                let vals = vec![v; g.num_points()];
                g.add_point_array(DataArray::owned("data", 1, vals));
                let a = InMemoryAdaptor::new(DataSet::Image(g), s as f64, s);
                ac.execute(&a, comm);
            }
            ac.finalize(comm);
            if comm.rank() == 0 {
                let r = res.lock().clone().unwrap();
                // Top lag-1 peaks must be rank 2's cells. Rank 2 owns
                // global x ∈ [2..=3] (shared planes) of the 5×2×2 grid.
                let e = Extent::whole([5, 2, 2]);
                let rank2 = datamodel::partition_extent(&e, [4, 1, 1], 2);
                for p in &r[0] {
                    let pt = e.point_at(p.cell as usize);
                    assert!(rank2.contains(pt), "peak {pt:?} inside rank 2's block");
                }
            }
        });
    }

    #[test]
    fn threaded_update_is_bitwise_identical() {
        World::run(1, |comm| {
            for threads in [2usize, 5, 0] {
                let mut serial = Autocorrelation::new("data", 4, 3);
                let mut threaded = Autocorrelation::new("data", 4, 3).with_threads(threads);
                let rs = serial.results_handle();
                let rt = threaded.results_handle();
                for s in 0..20u64 {
                    let vals: Vec<f64> = (0..37)
                        .map(|i| ((i as f64 * 0.31 + s as f64) * 1.7).sin())
                        .collect();
                    serial.execute(&adaptor(vals.clone(), s), comm);
                    threaded.execute(&adaptor(vals, s), comm);
                }
                assert_eq!(serial.corr, threaded.corr, "threads={threads}");
                assert_eq!(serial.history, threaded.history);
                serial.finalize(comm);
                threaded.finalize(comm);
                assert_eq!(rs.lock().clone(), rt.lock().clone());
            }
        });
    }

    #[test]
    fn buffers_are_two_window_sized_arrays() {
        World::run(1, |comm| {
            let mut ac = Autocorrelation::new("data", 10, 1);
            ac.execute(&adaptor(vec![1.0; 100], 0), comm);
            // Two buffers × 100 cells × 10 lags × 8 bytes.
            assert_eq!(ac.buffer_bytes(), 2 * 100 * 10 * 8);
        });
    }

    #[test]
    fn short_runs_have_partial_lags() {
        World::run(1, |comm| {
            let mut ac = Autocorrelation::new("data", 5, 1);
            let res = ac.results_handle();
            ac.execute(&adaptor(vec![3.0], 0), comm);
            ac.execute(&adaptor(vec![3.0], 1), comm);
            ac.finalize(comm);
            let r = res.lock().clone().unwrap();
            assert_eq!(r[0][0].value, 9.0, "one lag-1 product");
            assert_eq!(r[1][0].value, 0.0, "lag 2 never reachable");
            assert_eq!(r.len(), 5);
        });
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = Autocorrelation::new("data", 0, 1);
    }
}
