//! Descriptive statistics analysis: count/mean/variance/extrema in one
//! pass plus a single vector allreduce — a second lightweight analysis
//! pattern (BSP with a final small reduction) used by tests, examples,
//! and the GLEAN endpoint.

use minimpi::Comm;
use parking_lot::Mutex;
use std::sync::Arc;

use crate::adaptor::{Association, DataAdaptor};
use crate::analysis::{for_each_value, AnalysisAdaptor, Steering};

/// Moments and extrema of a field at one step, identical on all ranks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    /// Number of (non-ghost) values.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Timestep.
    pub step: u64,
}

/// Shared handle to the latest stats (available on **every** rank, since
/// the reduction is an allreduce).
pub type ResultsHandle = Arc<Mutex<Option<Stats>>>;

/// Descriptive-statistics analysis adaptor.
pub struct DescriptiveStats {
    array: String,
    assoc: Association,
    results: ResultsHandle,
    /// Local partials `[count, sum, sum_sq, min, max]` plus the step,
    /// carried from the communicator-free phase to the sync point.
    pending: Option<([f64; 5], u64)>,
}

impl DescriptiveStats {
    /// Stats of the named point array.
    pub fn new(array: impl Into<String>) -> Self {
        Self::with_association(array, Association::Point)
    }

    /// Stats with an explicit association.
    pub fn with_association(array: impl Into<String>, assoc: Association) -> Self {
        DescriptiveStats {
            array: array.into(),
            assoc,
            results: Arc::new(Mutex::new(None)),
            pending: None,
        }
    }

    /// A handle to each step's result.
    pub fn results_handle(&self) -> ResultsHandle {
        Arc::clone(&self.results)
    }
}

impl AnalysisAdaptor for DescriptiveStats {
    fn name(&self) -> &str {
        "descriptive-stats"
    }

    fn execute(&mut self, data: &dyn DataAdaptor, comm: &Comm) -> Steering {
        // The synchronous path is the offload split run back-to-back:
        // identical arithmetic whichever thread ran the local phase.
        self.execute_local(data, &comm.probe());
        self.complete(comm)
    }

    fn supports_offload(&self) -> bool {
        true
    }

    fn execute_local(&mut self, data: &dyn DataAdaptor, _probe: &probe::Probe) {
        // Local partials: [count, sum, sum_sq, min, max].
        let mut count = 0.0f64;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for_each_value(data, self.assoc, &self.array, |v| {
            count += 1.0;
            sum += v;
            sum_sq += v * v;
            lo = lo.min(v);
            hi = hi.max(v);
        });
        self.pending = Some(([count, sum, sum_sq, lo, hi], data.step()));
    }

    fn complete(&mut self, comm: &Comm) -> Steering {
        let Some((partials, step)) = self.pending.take() else {
            return Steering::Continue;
        };
        let merged = comm.allreduce(partials.to_vec(), |a, b| {
            vec![
                a[0] + b[0],
                a[1] + b[1],
                a[2] + b[2],
                a[3].min(b[3]),
                a[4].max(b[4]),
            ]
        });
        let n = merged[0];
        let stats = if n > 0.0 {
            let mean = merged[1] / n;
            Stats {
                count: n as u64,
                mean,
                variance: (merged[2] / n - mean * mean).max(0.0),
                min: merged[3],
                max: merged[4],
                step,
            }
        } else {
            Stats {
                count: 0,
                mean: 0.0,
                variance: 0.0,
                min: f64::NAN,
                max: f64::NAN,
                step,
            }
        };
        *self.results.lock() = Some(stats);
        Steering::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptor::InMemoryAdaptor;
    use datamodel::{DataArray, DataSet, Extent, ImageData};
    use minimpi::World;

    fn adaptor(values: Vec<f64>) -> InMemoryAdaptor {
        let n = values.len();
        let e = Extent::whole([n, 1, 1]);
        let mut g = ImageData::new(e, e);
        g.add_point_array(DataArray::owned("data", 1, values));
        InMemoryAdaptor::new(DataSet::Image(g), 0.0, 11)
    }

    #[test]
    fn global_moments_across_ranks() {
        World::run(4, |comm| {
            // Rank r holds [r, r] → global values 0,0,1,1,2,2,3,3.
            let mut d = DescriptiveStats::new("data");
            let res = d.results_handle();
            d.execute(&adaptor(vec![comm.rank() as f64; 2]), comm);
            let s = (*res.lock()).unwrap();
            assert_eq!(s.count, 8);
            assert_eq!(s.mean, 1.5);
            assert_eq!(s.min, 0.0);
            assert_eq!(s.max, 3.0);
            assert!((s.variance - 1.25).abs() < 1e-12);
            assert_eq!(s.step, 11);
        });
    }

    #[test]
    fn result_identical_on_every_rank() {
        let outs = World::run(3, |comm| {
            let mut d = DescriptiveStats::new("data");
            let res = d.results_handle();
            d.execute(&adaptor(vec![comm.rank() as f64 * 2.0]), comm);
            let s = (*res.lock()).unwrap();
            (s.mean, s.min, s.max)
        });
        assert!(outs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn empty_field_yields_zero_count() {
        World::run(2, |comm| {
            let mut d = DescriptiveStats::new("missing");
            let res = d.results_handle();
            d.execute(&adaptor(vec![1.0]), comm);
            let s = (*res.lock()).unwrap();
            assert_eq!(s.count, 0);
            assert!(s.min.is_nan());
        });
    }

    #[test]
    fn variance_of_constant_is_zero() {
        World::run(2, |comm| {
            let mut d = DescriptiveStats::new("data");
            let res = d.results_handle();
            d.execute(&adaptor(vec![7.0; 5]), comm);
            assert_eq!((*res.lock()).unwrap().variance, 0.0);
        });
    }
}
