//! The histogram analysis of §3.3: two global reductions find the data
//! range, each rank bins its local values, and the bins reduce to root.
//! The only extra storage is proportional to the bin count.
//!
//! Both local passes *stream* over the simulation's buffers: values are
//! read in place through zero-copy borrowed slices (never gathered into
//! a temporary), in contiguous chunks that can run on intra-rank threads
//! with per-thread accumulators. Per-thread state is one `(min, max,
//! count)` triple for pass 1 and one bin vector for pass 2, so storage
//! stays proportional to the bin count (× threads), independent of the
//! field size.
//!
//! The local passes run a **lane-unrolled kernel**: pass 1 folds values
//! through four independent accumulator lanes (breaking the sequential
//! `min`/`max` dependency chain so LLVM can pipeline or vectorize it),
//! with ghost flags applied branchlessly as identity elements; pass 2
//! scatters into four independent sub-histograms so back-to-back
//! increments of one hot bin stop serializing on store-to-load
//! forwarding. Both are result-identical to the
//! pre-blocking streaming loops, which are kept as the *reference
//! kernel* ([`HistogramAnalysis::with_reference_kernel`]) — the
//! property tests pin blocked == reference on arbitrary decks, and the
//! hotpath bench reports the blocked kernel's speedup over it.
//!
//! The collectives are sized by measurement, not habit: the two range
//! reductions of §3.3 are fused into one `(min, max)` pair reduce, and
//! the bin reduction goes through [`Comm::allreduce_vec_auto`], which
//! picks tree vs reduce-scatter/allgather from the calibrated
//! crossover table.

use minimpi::Comm;
use parking_lot::Mutex;
use std::sync::Arc;

use crate::adaptor::{Association, DataAdaptor};
use crate::analysis::{ghost_at, leaf_views, AnalysisAdaptor, LeafView, Steering};
use crate::exec;
use datamodel::MemoryFootprint;

/// The result available on rank 0 after each execute.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramResult {
    /// Global minimum of the field.
    pub min: f64,
    /// Global maximum of the field.
    pub max: f64,
    /// Per-bin global counts.
    pub counts: Vec<u64>,
    /// Timestep the histogram was computed at.
    pub step: u64,
}

impl HistogramResult {
    /// The inclusive value range of bin `b`.
    pub fn bin_range(&self, b: usize) -> (f64, f64) {
        let w = (self.max - self.min) / self.counts.len() as f64;
        (self.min + b as f64 * w, self.min + (b + 1) as f64 * w)
    }
}

/// Shared handle to the most recent result (populated on rank 0).
pub type ResultsHandle = Arc<Mutex<Option<HistogramResult>>>;

/// Histogram analysis adaptor.
pub struct HistogramAnalysis {
    array: String,
    assoc: Association,
    bins: usize,
    threads: usize,
    reference: bool,
    results: ResultsHandle,
    failures: Vec<String>,
    reported_missing: bool,
    pending: Option<PendingHistogram>,
}

/// State carried from the communicator-free local phase to the
/// sync-point phase. Owns the step's analysis mesh: pass 2 needs the
/// values again once the global range is known, and in offload mode
/// the two phases run on different threads at different times.
struct PendingHistogram {
    mesh: datamodel::DataSet,
    lo: f64,
    hi: f64,
    local_n: u64,
    step: u64,
}

impl HistogramAnalysis {
    /// Histogram of the named **point** array with `bins` bins.
    pub fn new(array: impl Into<String>, bins: usize) -> Self {
        Self::with_association(array, Association::Point, bins)
    }

    /// Histogram with an explicit association.
    pub fn with_association(array: impl Into<String>, assoc: Association, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        HistogramAnalysis {
            array: array.into(),
            assoc,
            bins,
            threads: 1,
            reference: false,
            results: Arc::new(Mutex::new(None)),
            failures: Vec::new(),
            reported_missing: false,
            pending: None,
        }
    }

    /// Run the local streaming passes on `threads` intra-rank threads
    /// (`0` = use every available core). Counts are integer, so results
    /// are identical at any thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Bench/test hook: run the pre-blocking streaming loops instead of
    /// the cache-blocked kernel. This is the reference implementation
    /// the blocked kernel is validated against (property tests) and
    /// benchmarked over (`BENCH_hotpath.json`'s `serial_s`); results
    /// are identical either way.
    pub fn with_reference_kernel(mut self) -> Self {
        self.reference = true;
        self
    }

    /// A handle through which rank 0 can read each step's result.
    pub fn results_handle(&self) -> ResultsHandle {
        Arc::clone(&self.results)
    }
}

/// The ghost sub-slice matching a chunk that starts at `start` in the
/// full view (ghost arrays are always full-length when present).
fn sub_ghosts(ghosts: Option<&[u8]>, start: usize, len: usize) -> Option<&[u8]> {
    ghosts.map(|g| &g[start..start + len])
}

/// Reference pass-1 kernel: one sequential `(min, max, count)` fold with
/// a branch per ghost flag. Kept as the correctness baseline the blocked
/// kernel is pinned against.
fn reference_range(chunk: &[f64], ghosts: Option<&[u8]>, start: usize) -> (f64, f64, u64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut n = 0u64;
    for (i, &v) in chunk.iter().enumerate() {
        if ghost_at(ghosts, start + i) {
            continue;
        }
        lo = lo.min(v);
        hi = hi.max(v);
        n += 1;
    }
    (lo, hi, n)
}

/// Blocked pass-1 kernel: four independent accumulator lanes break the
/// sequential `min`/`max` dependency chain, and ghost flags are applied
/// branchlessly by substituting each lane's identity element (`+∞` for
/// the min lane, `-∞` for the max lane) — exactly equivalent to
/// skipping the value, since `x.min(+∞) == x` and `x.max(-∞) == x` for
/// every `x` including `NaN`-ignoring folds. The final lane merge is
/// fixed-order.
fn blocked_range(chunk: &[f64], ghosts: Option<&[u8]>) -> (f64, f64, u64) {
    let mut mn = [f64::INFINITY; 4];
    let mut mx = [f64::NEG_INFINITY; 4];
    let mut n = 0u64;
    match ghosts {
        None => {
            let mut lanes = chunk.chunks_exact(4);
            for vs in &mut lanes {
                for l in 0..4 {
                    mn[l] = mn[l].min(vs[l]);
                    mx[l] = mx[l].max(vs[l]);
                }
            }
            for &v in lanes.remainder() {
                mn[0] = mn[0].min(v);
                mx[0] = mx[0].max(v);
            }
            n = chunk.len() as u64;
        }
        Some(g) => {
            let mut lanes = chunk.chunks_exact(4);
            let mut glanes = g.chunks_exact(4);
            for (vs, gs) in (&mut lanes).zip(&mut glanes) {
                for l in 0..4 {
                    let keep = gs[l] == 0;
                    mn[l] = mn[l].min(if keep { vs[l] } else { f64::INFINITY });
                    mx[l] = mx[l].max(if keep { vs[l] } else { f64::NEG_INFINITY });
                    n += u64::from(keep);
                }
            }
            for (&v, &gv) in lanes.remainder().iter().zip(glanes.remainder()) {
                let keep = gv == 0;
                mn[0] = mn[0].min(if keep { v } else { f64::INFINITY });
                mx[0] = mx[0].max(if keep { v } else { f64::NEG_INFINITY });
                n += u64::from(keep);
            }
        }
    }
    (
        mn[0].min(mn[1]).min(mn[2]).min(mn[3]),
        mx[0].max(mx[1]).max(mx[2]).max(mx[3]),
        n,
    )
}

/// Reference pass-2 kernel: bin each non-ghost value straight into the
/// count vector, one branch per ghost flag.
#[allow(clippy::too_many_arguments)]
fn reference_bin(
    chunk: &[f64],
    ghosts: Option<&[u8]>,
    start: usize,
    glo: f64,
    inv_w: f64,
    last: usize,
    c: &mut [u64],
) {
    for (i, &v) in chunk.iter().enumerate() {
        if ghost_at(ghosts, start + i) {
            continue;
        }
        c[(((v - glo) * inv_w) as usize).min(last)] += 1;
    }
}

/// Blocked pass-2 kernel: four independent sub-histogram lanes break
/// the increment dependency chain — when consecutive values land in the
/// same bin, a single count vector serializes on store-to-load
/// forwarding, while four lanes let the cast/clamp/increment chains
/// overlap (the same trick as the pass-1 lanes). Ghosts are masked
/// branchlessly (`+= 0` for a ghost is the integer identity, equivalent
/// to skipping), the saturating float→int cast matches the reference
/// cast exactly (`NaN → 0`, out-of-range clamps), and the lanes are
/// merged into `c` with exact integer adds in fixed order — so the
/// split changes nothing observable.
fn blocked_bin(
    chunk: &[f64],
    ghosts: Option<&[u8]>,
    glo: f64,
    inv_w: f64,
    last: usize,
    c: &mut [u64],
) {
    let bins = c.len();
    let idx = |v: f64| (((v - glo) * inv_w) as usize).min(last);
    let mut lanes = vec![0u64; bins * 4];
    let (a01, a23) = lanes.split_at_mut(bins * 2);
    let (l0, l1) = a01.split_at_mut(bins);
    let (l2, l3) = a23.split_at_mut(bins);
    match ghosts {
        None => {
            let mut quads = chunk.chunks_exact(4);
            for vs in &mut quads {
                l0[idx(vs[0])] += 1;
                l1[idx(vs[1])] += 1;
                l2[idx(vs[2])] += 1;
                l3[idx(vs[3])] += 1;
            }
            for &v in quads.remainder() {
                l0[idx(v)] += 1;
            }
        }
        Some(g) => {
            let mut quads = chunk.chunks_exact(4);
            let mut gquads = g.chunks_exact(4);
            for (vs, gs) in (&mut quads).zip(&mut gquads) {
                l0[idx(vs[0])] += u64::from(gs[0] == 0);
                l1[idx(vs[1])] += u64::from(gs[1] == 0);
                l2[idx(vs[2])] += u64::from(gs[2] == 0);
                l3[idx(vs[3])] += u64::from(gs[3] == 0);
            }
            for (&v, &gv) in quads.remainder().iter().zip(gquads.remainder()) {
                l0[idx(v)] += u64::from(gv == 0);
            }
        }
    }
    for (dst, ((&a, &b), (&d, &e))) in c
        .iter_mut()
        .zip(l0.iter().zip(l1.iter()).zip(l2.iter().zip(l3.iter())))
    {
        *dst += a + b + d + e;
    }
}

impl AnalysisAdaptor for HistogramAnalysis {
    fn name(&self) -> &str {
        "histogram"
    }

    fn execute(&mut self, data: &dyn DataAdaptor, comm: &Comm) -> Steering {
        // The synchronous path *is* the offload split run back-to-back,
        // so device-offloaded and host in situ results are bitwise
        // identical by construction.
        self.execute_local(data, &comm.probe());
        self.complete(comm)
    }

    fn supports_offload(&self) -> bool {
        true
    }

    fn execute_local(&mut self, data: &dyn DataAdaptor, probe: &probe::Probe) {
        let mut mesh = data.mesh();
        match data.add_array(&mut mesh, self.assoc, &self.array) {
            Ok(()) => {
                // Ghost flags, so ghost tuples can be blanked.
                let _ = data.add_array(&mut mesh, self.assoc, datamodel::GHOST_ARRAY_NAME);
            }
            Err(err) => {
                // Report the typed cause once; re-reporting every step
                // would only flood the failure log.
                if !self.reported_missing {
                    self.reported_missing = true;
                    self.failures.push(err.to_string());
                }
            }
        }
        if probe.is_enabled() {
            // Borrowed vs. owned bytes of this step's analysis mesh: the
            // zero-copy story as numbers.
            let owned = mesh.heap_bytes(false);
            let total = mesh.heap_bytes(true);
            probe.gauge_max(probe::GAUGE_DATASET_OWNED, owned as u64);
            probe.gauge_max(probe::GAUGE_DATASET_SHARED, (total - owned) as u64);
        }
        // A mesh without the array yields zero views, but the pending
        // state (and hence the sync-point collectives) still runs:
        // every rank must reach `complete`'s reductions.
        let views = leaf_views(&mesh, self.assoc, &self.array);

        // Pass 1: streaming local min/max + count. Nothing is
        // materialized: each chunk folds borrowed values into a
        // (min, max, count) triple through the blocked (or reference)
        // kernel.
        let reference = self.reference;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut local_n = 0u64;
        {
            let _pass1 = probe.span("per-step/histogram/pass1");
            for view in &views {
                match view {
                    LeafView::Direct(vals, ghosts) => {
                        let stats = exec::map_chunks(self.threads, vals, |_, start, chunk| {
                            if reference {
                                reference_range(chunk, *ghosts, start)
                            } else {
                                blocked_range(chunk, sub_ghosts(*ghosts, start, chunk.len()))
                            }
                        });
                        for (clo, chi, cn) in stats {
                            lo = lo.min(clo);
                            hi = hi.max(chi);
                            local_n += cn;
                        }
                    }
                    LeafView::Indirect(attrs, arr) => {
                        for t in 0..arr.num_tuples() {
                            if attrs.is_ghost(t) {
                                continue;
                            }
                            let v = arr.get(t, 0);
                            lo = lo.min(v);
                            hi = hi.max(v);
                            local_n += 1;
                        }
                    }
                }
            }
        }
        drop(views);
        // Pass 2 needs the values again once the global range is known,
        // so the mesh (zero-copy views of the step's buffers — or, in
        // offload mode, of the device payload) rides along.
        self.pending = Some(PendingHistogram {
            mesh,
            lo,
            hi,
            local_n,
            step: data.step(),
        });
    }

    fn complete(&mut self, comm: &Comm) -> Steering {
        let probe = comm.probe();
        let Some(PendingHistogram {
            mesh,
            lo,
            hi,
            local_n,
            step,
        }) = self.pending.take()
        else {
            return Steering::Continue;
        };
        let views = leaf_views(&mesh, self.assoc, &self.array);
        // The two global reductions of §3.3 fused into one (min, max)
        // pair: identical values, half the collective latency — the
        // range phase was the highest-variance span in the seed
        // BENCH_hotpath.json run report.
        let (glo, ghi) = {
            let _range = probe.span("per-step/histogram/range");
            comm.allreduce_scalar((lo, hi), |a: (f64, f64), b| (a.0.min(b.0), a.1.max(b.1)))
        };

        // Pass 2: streaming local binning with per-thread bin vectors,
        // merged by exact integer addition (thread-count invariant).
        let reference = self.reference;
        let bins = self.bins;
        let mut counts = vec![0u64; self.bins];
        {
            let _pass2 = probe.span("per-step/histogram/pass2");
            if ghi > glo {
                let inv_w = self.bins as f64 / (ghi - glo);
                let last = self.bins - 1;
                for view in &views {
                    match view {
                        LeafView::Direct(vals, ghosts) => {
                            let partials =
                                exec::map_chunks(self.threads, vals, |_, start, chunk| {
                                    let mut c = vec![0u64; bins];
                                    if reference {
                                        reference_bin(
                                            chunk, *ghosts, start, glo, inv_w, last, &mut c,
                                        );
                                    } else {
                                        blocked_bin(
                                            chunk,
                                            sub_ghosts(*ghosts, start, chunk.len()),
                                            glo,
                                            inv_w,
                                            last,
                                            &mut c,
                                        );
                                    }
                                    c
                                });
                            for part in partials {
                                for (a, b) in counts.iter_mut().zip(part) {
                                    *a += b;
                                }
                            }
                        }
                        LeafView::Indirect(attrs, arr) => {
                            for t in 0..arr.num_tuples() {
                                if attrs.is_ghost(t) {
                                    continue;
                                }
                                let v = arr.get(t, 0);
                                counts[(((v - glo) * inv_w) as usize).min(last)] += 1;
                            }
                        }
                    }
                }
            } else if glo.is_finite() {
                // Degenerate range: everything in bin 0.
                counts[0] = local_n;
            }
        }

        // Bin reduction through the size-adaptive collective; every
        // rank pays O(bins) traffic, and only root retains the result.
        let counts = {
            let _reduce = probe.span("per-step/histogram/reduce");
            comm.allreduce_vec_auto(counts, |a, b| a + b)
        };
        if comm.rank() == 0 {
            *self.results.lock() = Some(HistogramResult {
                min: glo,
                max: ghi,
                counts,
                step,
            });
        }
        Steering::Continue
    }

    fn take_failures(&mut self) -> Vec<String> {
        std::mem::take(&mut self.failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptor::InMemoryAdaptor;
    use datamodel::{DataArray, DataSet, Extent, ImageData};
    use minimpi::World;

    fn adaptor_with(rank: usize, values: Vec<f64>) -> InMemoryAdaptor {
        let n = values.len();
        let e = Extent::whole([n, 1, 1]);
        let mut g = ImageData::new(e, e);
        g.add_point_array(DataArray::owned("data", 1, values));
        InMemoryAdaptor::new(DataSet::Image(g), rank as f64, 7)
    }

    #[test]
    fn uniform_values_fill_bins_evenly() {
        World::run(4, |comm| {
            // Global values 0..16 across 4 ranks, 4 bins → 4 per bin.
            let vals: Vec<f64> = (0..4).map(|i| (comm.rank() * 4 + i) as f64).collect();
            let mut h = HistogramAnalysis::new("data", 4);
            let res = h.results_handle();
            let a = adaptor_with(comm.rank(), vals);
            assert!(h.execute(&a, comm).should_continue());
            if comm.rank() == 0 {
                let r = res.lock().clone().unwrap();
                assert_eq!(r.min, 0.0);
                assert_eq!(r.max, 15.0);
                assert_eq!(r.counts.iter().sum::<u64>(), 16);
                assert_eq!(r.step, 7);
                // Even spread: 4 per bin.
                assert!(r.counts.iter().all(|&c| c == 4), "{:?}", r.counts);
            } else {
                assert!(res.lock().is_none(), "non-root holds no result");
            }
        });
    }

    #[test]
    fn degenerate_constant_field() {
        World::run(2, |comm| {
            let mut h = HistogramAnalysis::new("data", 8);
            let res = h.results_handle();
            let a = adaptor_with(comm.rank(), vec![5.0; 10]);
            h.execute(&a, comm);
            if comm.rank() == 0 {
                let r = res.lock().clone().unwrap();
                assert_eq!(r.min, 5.0);
                assert_eq!(r.max, 5.0);
                assert_eq!(r.counts[0], 20);
                assert_eq!(r.counts[1..].iter().sum::<u64>(), 0);
            }
        });
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        World::run(1, |comm| {
            let mut h = HistogramAnalysis::new("data", 4);
            let res = h.results_handle();
            let a = adaptor_with(0, vec![0.0, 1.0, 2.0, 4.0]);
            h.execute(&a, comm);
            let r = res.lock().clone().unwrap();
            assert_eq!(*r.counts.last().unwrap(), 1);
            assert_eq!(r.counts.iter().sum::<u64>(), 4);
        });
    }

    #[test]
    fn unknown_array_is_harmless() {
        World::run(2, |comm| {
            let mut h = HistogramAnalysis::new("missing", 4);
            let a = adaptor_with(comm.rank(), vec![1.0]);
            assert!(h.execute(&a, comm).should_continue());
            assert!(h.execute(&a, comm).should_continue());
            if comm.rank() == 0 {
                let r = h.results_handle().lock().clone().unwrap();
                assert_eq!(r.counts.iter().sum::<u64>(), 0);
            }
            // The missing array surfaces as one typed failure report,
            // not one per step.
            let fails = h.take_failures();
            assert_eq!(fails.len(), 1, "{fails:?}");
            assert!(
                fails[0].contains("unknown point array 'missing'"),
                "{fails:?}"
            );
            assert!(h.take_failures().is_empty(), "drained");
        });
    }

    #[test]
    fn ghost_tuples_are_excluded() {
        World::run(1, |comm| {
            let e = Extent::whole([4, 1, 1]);
            let mut g = ImageData::new(e, e);
            g.add_point_array(DataArray::owned("data", 1, vec![1.0, 2.0, 3.0, 4.0]));
            g.add_point_array(DataArray::owned(
                datamodel::GHOST_ARRAY_NAME,
                1,
                vec![0u8, 1, 1, 0],
            ));
            let a = InMemoryAdaptor::new(DataSet::Image(g), 0.0, 0);
            let mut h = HistogramAnalysis::new("data", 2);
            let res = h.results_handle();
            h.execute(&a, comm);
            let r = res.lock().clone().unwrap();
            assert_eq!(r.counts.iter().sum::<u64>(), 2, "ghosts blanked");
            assert_eq!(r.min, 1.0);
            assert_eq!(r.max, 4.0);
        });
    }

    #[test]
    fn threaded_histogram_matches_serial() {
        World::run(2, |comm| {
            let vals: Vec<f64> = (0..1003)
                .map(|i| ((i * 37 + comm.rank() * 11) % 101) as f64 - 50.0)
                .collect();
            for threads in [2usize, 7, 0] {
                let mut serial = HistogramAnalysis::new("data", 16);
                let mut threaded = HistogramAnalysis::new("data", 16).with_threads(threads);
                let rs = serial.results_handle();
                let rt = threaded.results_handle();
                let a = adaptor_with(comm.rank(), vals.clone());
                serial.execute(&a, comm);
                threaded.execute(&a, comm);
                if comm.rank() == 0 {
                    assert_eq!(rs.lock().clone(), rt.lock().clone(), "threads={threads}");
                }
            }
        });
    }

    #[test]
    fn shared_field_is_streamed_without_copy() {
        World::run(1, |comm| {
            let field = std::sync::Arc::new((0..256).map(|i| i as f64).collect::<Vec<_>>());
            let e = Extent::whole([256, 1, 1]);
            let mut g = ImageData::new(e, e);
            g.add_point_array(DataArray::shared("data", 1, std::sync::Arc::clone(&field)));
            let a = InMemoryAdaptor::new(DataSet::Image(g), 0.0, 0);
            let before = std::sync::Arc::strong_count(&field);
            let mut h = HistogramAnalysis::new("data", 8).with_threads(3);
            h.execute(&a, comm);
            // The analysis borrowed the simulation buffer in place: no
            // lingering references, no materialized value vector.
            assert_eq!(std::sync::Arc::strong_count(&field), before);
            let r = h.results_handle().lock().clone().unwrap();
            assert_eq!(r.counts.iter().sum::<u64>(), 256);
            assert_eq!(r.counts, vec![32; 8]);
        });
    }

    #[test]
    fn bin_range_covers_span() {
        let r = HistogramResult {
            min: 0.0,
            max: 10.0,
            counts: vec![0; 5],
            step: 0,
        };
        assert_eq!(r.bin_range(0), (0.0, 2.0));
        assert_eq!(r.bin_range(4), (8.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = HistogramAnalysis::new("data", 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

        /// The blocked/fused kernel is indistinguishable from the
        /// reference streaming kernel on arbitrary decks — including
        /// NaN / ±0 / ±∞ specials, ghost masks, lengths that exercise
        /// both the 4-lane remainder and the `BLOCK` boundary, and any
        /// thread count.
        #[test]
        fn prop_blocked_matches_reference(
            n in 1usize..1200,
            seed in proptest::prelude::any::<u32>(),
            bins in 1usize..96,
            threads in 1usize..5,
            ghost_stride in 0usize..5,
        ) {
            World::run(2, move |comm| {
                let vals: Vec<f64> = (0..n)
                    .map(|i| {
                        let x = (seed as u64)
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(
                                ((i + comm.rank() * 131) as u64)
                                    .wrapping_mul(2862933555777941757),
                            );
                        // Mostly finite values with specials sprinkled in.
                        match x % 17 {
                            0 => f64::NAN,
                            1 => f64::INFINITY,
                            2 => f64::NEG_INFINITY,
                            3 => -0.0,
                            4 => 0.0,
                            _ => ((x >> 16) as f64) / 1e13 - 1600.0,
                        }
                    })
                    .collect();
                let e = Extent::whole([n, 1, 1]);
                let mut g = ImageData::new(e, e);
                g.add_point_array(DataArray::owned("data", 1, vals));
                if ghost_stride > 0 {
                    let ghosts: Vec<u8> =
                        (0..n).map(|i| u8::from(i % ghost_stride == 0)).collect();
                    g.add_point_array(DataArray::owned(
                        datamodel::GHOST_ARRAY_NAME,
                        1,
                        ghosts,
                    ));
                }
                let a = InMemoryAdaptor::new(DataSet::Image(g), comm.rank() as f64, 3);
                let mut blocked = HistogramAnalysis::new("data", bins).with_threads(threads);
                let mut reference = HistogramAnalysis::new("data", bins).with_reference_kernel();
                let rb = blocked.results_handle();
                let rr = reference.results_handle();
                blocked.execute(&a, comm);
                reference.execute(&a, comm);
                if comm.rank() == 0 {
                    let b = rb.lock().clone().unwrap();
                    let r = rr.lock().clone().unwrap();
                    assert_eq!(b, r, "bins={bins} threads={threads} stride={ghost_stride}");
                }
            });
        }
    }
}
