//! The histogram analysis of §3.3: two global reductions find the data
//! range, each rank bins its local values, and the bins reduce to root.
//! The only extra storage is proportional to the bin count.
//!
//! Both local passes *stream* over the simulation's buffers: values are
//! read in place through zero-copy borrowed slices (never gathered into
//! a temporary), in contiguous chunks that can run on intra-rank threads
//! with per-thread accumulators. Per-thread state is one `(min, max,
//! count)` triple for pass 1 and one bin vector for pass 2, so storage
//! stays proportional to the bin count (× threads), independent of the
//! field size. The bin reduction rides the large-message
//! reduce-scatter/allgather collective ([`Comm::allreduce_vec_rsag`]).

use minimpi::Comm;
use parking_lot::Mutex;
use std::sync::Arc;

use crate::adaptor::{Association, DataAdaptor};
use crate::analysis::{ghost_at, leaf_views, AnalysisAdaptor, LeafView, Steering};
use crate::exec;
use datamodel::MemoryFootprint;

/// The result available on rank 0 after each execute.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramResult {
    /// Global minimum of the field.
    pub min: f64,
    /// Global maximum of the field.
    pub max: f64,
    /// Per-bin global counts.
    pub counts: Vec<u64>,
    /// Timestep the histogram was computed at.
    pub step: u64,
}

impl HistogramResult {
    /// The inclusive value range of bin `b`.
    pub fn bin_range(&self, b: usize) -> (f64, f64) {
        let w = (self.max - self.min) / self.counts.len() as f64;
        (self.min + b as f64 * w, self.min + (b + 1) as f64 * w)
    }
}

/// Shared handle to the most recent result (populated on rank 0).
pub type ResultsHandle = Arc<Mutex<Option<HistogramResult>>>;

/// Histogram analysis adaptor.
pub struct HistogramAnalysis {
    array: String,
    assoc: Association,
    bins: usize,
    threads: usize,
    results: ResultsHandle,
    failures: Vec<String>,
    reported_missing: bool,
}

impl HistogramAnalysis {
    /// Histogram of the named **point** array with `bins` bins.
    pub fn new(array: impl Into<String>, bins: usize) -> Self {
        Self::with_association(array, Association::Point, bins)
    }

    /// Histogram with an explicit association.
    pub fn with_association(array: impl Into<String>, assoc: Association, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        HistogramAnalysis {
            array: array.into(),
            assoc,
            bins,
            threads: 1,
            results: Arc::new(Mutex::new(None)),
            failures: Vec::new(),
            reported_missing: false,
        }
    }

    /// Run the local streaming passes on `threads` intra-rank threads
    /// (`0` = use every available core). Counts are integer, so results
    /// are identical at any thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// A handle through which rank 0 can read each step's result.
    pub fn results_handle(&self) -> ResultsHandle {
        Arc::clone(&self.results)
    }
}

impl AnalysisAdaptor for HistogramAnalysis {
    fn name(&self) -> &str {
        "histogram"
    }

    fn execute(&mut self, data: &dyn DataAdaptor, comm: &Comm) -> Steering {
        let probe = comm.probe();
        let mut mesh = data.mesh();
        let have = match data.add_array(&mut mesh, self.assoc, &self.array) {
            Ok(()) => {
                // Ghost flags, so ghost tuples can be blanked.
                let _ = data.add_array(&mut mesh, self.assoc, datamodel::GHOST_ARRAY_NAME);
                true
            }
            Err(err) => {
                // Report the typed cause once; re-reporting every step
                // would only flood the failure log.
                if !self.reported_missing {
                    self.reported_missing = true;
                    self.failures.push(err.to_string());
                }
                false
            }
        };
        if probe.is_enabled() {
            // Borrowed vs. owned bytes of this step's analysis mesh: the
            // zero-copy story as numbers.
            let owned = mesh.heap_bytes(false);
            let total = mesh.heap_bytes(true);
            probe.gauge_max(probe::GAUGE_DATASET_OWNED, owned as u64);
            probe.gauge_max(probe::GAUGE_DATASET_SHARED, (total - owned) as u64);
        }
        let views = if have {
            leaf_views(&mesh, self.assoc, &self.array)
        } else {
            Vec::new()
        };

        // Pass 1: streaming local min/max + count, then the two global
        // reductions of §3.3. Nothing is materialized: each chunk folds
        // borrowed values into a (min, max, count) triple.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut local_n = 0u64;
        {
            let _pass1 = probe.span("per-step/histogram/pass1");
            for view in &views {
                match view {
                    LeafView::Direct(vals, ghosts) => {
                        let stats = exec::map_chunks(self.threads, vals, |_, start, chunk| {
                            let mut lo = f64::INFINITY;
                            let mut hi = f64::NEG_INFINITY;
                            let mut n = 0u64;
                            for (i, &v) in chunk.iter().enumerate() {
                                if ghost_at(*ghosts, start + i) {
                                    continue;
                                }
                                lo = lo.min(v);
                                hi = hi.max(v);
                                n += 1;
                            }
                            (lo, hi, n)
                        });
                        for (clo, chi, cn) in stats {
                            lo = lo.min(clo);
                            hi = hi.max(chi);
                            local_n += cn;
                        }
                    }
                    LeafView::Indirect(attrs, arr) => {
                        for t in 0..arr.num_tuples() {
                            if attrs.is_ghost(t) {
                                continue;
                            }
                            let v = arr.get(t, 0);
                            lo = lo.min(v);
                            hi = hi.max(v);
                            local_n += 1;
                        }
                    }
                }
            }
        }
        let (glo, ghi) = {
            let _range = probe.span("per-step/histogram/range");
            (
                comm.allreduce_scalar(lo, f64::min),
                comm.allreduce_scalar(hi, f64::max),
            )
        };

        // Pass 2: streaming local binning with per-thread bin vectors,
        // merged by exact integer addition (thread-count invariant).
        let mut counts = vec![0u64; self.bins];
        {
            let _pass2 = probe.span("per-step/histogram/pass2");
            if ghi > glo {
                let inv_w = self.bins as f64 / (ghi - glo);
                let last = self.bins - 1;
                for view in &views {
                    match view {
                        LeafView::Direct(vals, ghosts) => {
                            let partials =
                                exec::map_chunks(self.threads, vals, |_, start, chunk| {
                                    let mut c = vec![0u64; self.bins];
                                    for (i, &v) in chunk.iter().enumerate() {
                                        if ghost_at(*ghosts, start + i) {
                                            continue;
                                        }
                                        c[(((v - glo) * inv_w) as usize).min(last)] += 1;
                                    }
                                    c
                                });
                            for part in partials {
                                for (a, b) in counts.iter_mut().zip(part) {
                                    *a += b;
                                }
                            }
                        }
                        LeafView::Indirect(attrs, arr) => {
                            for t in 0..arr.num_tuples() {
                                if attrs.is_ghost(t) {
                                    continue;
                                }
                                let v = arr.get(t, 0);
                                counts[(((v - glo) * inv_w) as usize).min(last)] += 1;
                            }
                        }
                    }
                }
            } else if glo.is_finite() {
                // Degenerate range: everything in bin 0.
                counts[0] = local_n;
            }
        }

        // Bin reduction over the large-message path; every rank pays
        // O(bins) traffic, and only root retains the result.
        let counts = {
            let _reduce = probe.span("per-step/histogram/reduce");
            comm.allreduce_vec_rsag(counts, |a, b| a + b)
        };
        if comm.rank() == 0 {
            *self.results.lock() = Some(HistogramResult {
                min: glo,
                max: ghi,
                counts,
                step: data.step(),
            });
        }
        Steering::Continue
    }

    fn take_failures(&mut self) -> Vec<String> {
        std::mem::take(&mut self.failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptor::InMemoryAdaptor;
    use datamodel::{DataArray, DataSet, Extent, ImageData};
    use minimpi::World;

    fn adaptor_with(rank: usize, values: Vec<f64>) -> InMemoryAdaptor {
        let n = values.len();
        let e = Extent::whole([n, 1, 1]);
        let mut g = ImageData::new(e, e);
        g.add_point_array(DataArray::owned("data", 1, values));
        InMemoryAdaptor::new(DataSet::Image(g), rank as f64, 7)
    }

    #[test]
    fn uniform_values_fill_bins_evenly() {
        World::run(4, |comm| {
            // Global values 0..16 across 4 ranks, 4 bins → 4 per bin.
            let vals: Vec<f64> = (0..4).map(|i| (comm.rank() * 4 + i) as f64).collect();
            let mut h = HistogramAnalysis::new("data", 4);
            let res = h.results_handle();
            let a = adaptor_with(comm.rank(), vals);
            assert!(h.execute(&a, comm).should_continue());
            if comm.rank() == 0 {
                let r = res.lock().clone().unwrap();
                assert_eq!(r.min, 0.0);
                assert_eq!(r.max, 15.0);
                assert_eq!(r.counts.iter().sum::<u64>(), 16);
                assert_eq!(r.step, 7);
                // Even spread: 4 per bin.
                assert!(r.counts.iter().all(|&c| c == 4), "{:?}", r.counts);
            } else {
                assert!(res.lock().is_none(), "non-root holds no result");
            }
        });
    }

    #[test]
    fn degenerate_constant_field() {
        World::run(2, |comm| {
            let mut h = HistogramAnalysis::new("data", 8);
            let res = h.results_handle();
            let a = adaptor_with(comm.rank(), vec![5.0; 10]);
            h.execute(&a, comm);
            if comm.rank() == 0 {
                let r = res.lock().clone().unwrap();
                assert_eq!(r.min, 5.0);
                assert_eq!(r.max, 5.0);
                assert_eq!(r.counts[0], 20);
                assert_eq!(r.counts[1..].iter().sum::<u64>(), 0);
            }
        });
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        World::run(1, |comm| {
            let mut h = HistogramAnalysis::new("data", 4);
            let res = h.results_handle();
            let a = adaptor_with(0, vec![0.0, 1.0, 2.0, 4.0]);
            h.execute(&a, comm);
            let r = res.lock().clone().unwrap();
            assert_eq!(*r.counts.last().unwrap(), 1);
            assert_eq!(r.counts.iter().sum::<u64>(), 4);
        });
    }

    #[test]
    fn unknown_array_is_harmless() {
        World::run(2, |comm| {
            let mut h = HistogramAnalysis::new("missing", 4);
            let a = adaptor_with(comm.rank(), vec![1.0]);
            assert!(h.execute(&a, comm).should_continue());
            assert!(h.execute(&a, comm).should_continue());
            if comm.rank() == 0 {
                let r = h.results_handle().lock().clone().unwrap();
                assert_eq!(r.counts.iter().sum::<u64>(), 0);
            }
            // The missing array surfaces as one typed failure report,
            // not one per step.
            let fails = h.take_failures();
            assert_eq!(fails.len(), 1, "{fails:?}");
            assert!(
                fails[0].contains("unknown point array 'missing'"),
                "{fails:?}"
            );
            assert!(h.take_failures().is_empty(), "drained");
        });
    }

    #[test]
    fn ghost_tuples_are_excluded() {
        World::run(1, |comm| {
            let e = Extent::whole([4, 1, 1]);
            let mut g = ImageData::new(e, e);
            g.add_point_array(DataArray::owned("data", 1, vec![1.0, 2.0, 3.0, 4.0]));
            g.add_point_array(DataArray::owned(
                datamodel::GHOST_ARRAY_NAME,
                1,
                vec![0u8, 1, 1, 0],
            ));
            let a = InMemoryAdaptor::new(DataSet::Image(g), 0.0, 0);
            let mut h = HistogramAnalysis::new("data", 2);
            let res = h.results_handle();
            h.execute(&a, comm);
            let r = res.lock().clone().unwrap();
            assert_eq!(r.counts.iter().sum::<u64>(), 2, "ghosts blanked");
            assert_eq!(r.min, 1.0);
            assert_eq!(r.max, 4.0);
        });
    }

    #[test]
    fn threaded_histogram_matches_serial() {
        World::run(2, |comm| {
            let vals: Vec<f64> = (0..1003)
                .map(|i| ((i * 37 + comm.rank() * 11) % 101) as f64 - 50.0)
                .collect();
            for threads in [2usize, 7, 0] {
                let mut serial = HistogramAnalysis::new("data", 16);
                let mut threaded = HistogramAnalysis::new("data", 16).with_threads(threads);
                let rs = serial.results_handle();
                let rt = threaded.results_handle();
                let a = adaptor_with(comm.rank(), vals.clone());
                serial.execute(&a, comm);
                threaded.execute(&a, comm);
                if comm.rank() == 0 {
                    assert_eq!(rs.lock().clone(), rt.lock().clone(), "threads={threads}");
                }
            }
        });
    }

    #[test]
    fn shared_field_is_streamed_without_copy() {
        World::run(1, |comm| {
            let field = std::sync::Arc::new((0..256).map(|i| i as f64).collect::<Vec<_>>());
            let e = Extent::whole([256, 1, 1]);
            let mut g = ImageData::new(e, e);
            g.add_point_array(DataArray::shared("data", 1, std::sync::Arc::clone(&field)));
            let a = InMemoryAdaptor::new(DataSet::Image(g), 0.0, 0);
            let before = std::sync::Arc::strong_count(&field);
            let mut h = HistogramAnalysis::new("data", 8).with_threads(3);
            h.execute(&a, comm);
            // The analysis borrowed the simulation buffer in place: no
            // lingering references, no materialized value vector.
            assert_eq!(std::sync::Arc::strong_count(&field), before);
            let r = h.results_handle().lock().clone().unwrap();
            assert_eq!(r.counts.iter().sum::<u64>(), 256);
            assert_eq!(r.counts, vec![32; 8]);
        });
    }

    #[test]
    fn bin_range_covers_span() {
        let r = HistogramResult {
            min: 0.0,
            max: 10.0,
            counts: vec![0; 5],
            step: 0,
        };
        assert_eq!(r.bin_range(0), (0.0, 2.0));
        assert_eq!(r.bin_range(4), (8.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = HistogramAnalysis::new("data", 0);
    }
}
