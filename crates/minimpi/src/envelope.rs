//! Message envelopes and tag space.
//!
//! Every message carries `(src, tag, payload)`. Payloads are type-erased
//! (`Box<dyn Any + Send>`) so a message transfers ownership of its buffer —
//! a `Vec<f64>` moves across ranks without copying the heap allocation.

use std::any::Any;

/// Message tag. User tags occupy the low 32-bit space; collective
/// implementations use a reserved high space (see [`Tag::collective`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Tag(pub u64);

/// Wildcard source for [`crate::Comm::recv_any`]-style matching.
pub const ANY_SOURCE: usize = usize::MAX;

const COLLECTIVE_BIT: u64 = 1 << 63;

impl Tag {
    /// A user-level tag. Values are taken as-is from the low 32 bits.
    pub fn user(tag: u32) -> Self {
        Tag(tag as u64)
    }

    /// An internal tag for collective `kind` at collective-call `epoch`.
    ///
    /// Each rank counts collective calls on a communicator; because MPI
    /// semantics require every rank to issue collectives in the same order,
    /// the per-rank counters agree and the epoch disambiguates successive
    /// collectives of the same kind.
    pub fn collective(kind: CollectiveKind, epoch: u64) -> Self {
        Tag(COLLECTIVE_BIT | ((kind as u64) << 48) | (epoch & 0xFFFF_FFFF_FFFF))
    }

    /// True if this tag belongs to the reserved collective space.
    pub fn is_collective(self) -> bool {
        self.0 & COLLECTIVE_BIT != 0
    }

    /// Decode a collective tag into `(kind, epoch)`; `None` for user tags
    /// or unknown kind bits.
    pub fn collective_parts(self) -> Option<(CollectiveKind, u64)> {
        if !self.is_collective() {
            return None;
        }
        let kind = CollectiveKind::from_bits(((self.0 >> 48) & 0x7FFF) as u8)?;
        Some((kind, self.0 & 0xFFFF_FFFF_FFFF))
    }
}

impl std::fmt::Display for Tag {
    /// Human-readable form used in fail-fast diagnostics: `Bcast@7` for
    /// collectives, `user:42` for application tags.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.collective_parts() {
            Some((kind, epoch)) => write!(f, "{kind:?}@{epoch}"),
            None if self.is_collective() => write!(f, "collective:{:#x}", self.0),
            None => write!(f, "user:{}", self.0),
        }
    }
}

/// Which collective algorithm a reserved tag belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum CollectiveKind {
    Barrier = 1,
    Bcast = 2,
    Reduce = 3,
    Allreduce = 4,
    Gather = 5,
    Allgather = 6,
    Scatter = 7,
    Alltoall = 8,
    Scan = 9,
    Split = 10,
    ReduceScatter = 11,
}

impl CollectiveKind {
    /// Probe counter name for this collective (messages/bytes tally up
    /// under the algorithm that moved them: an allreduce built from
    /// reduce + bcast reports as those two kinds).
    pub fn counter_name(self) -> &'static str {
        match self {
            CollectiveKind::Barrier => "minimpi/barrier",
            CollectiveKind::Bcast => "minimpi/bcast",
            CollectiveKind::Reduce => "minimpi/reduce",
            CollectiveKind::Allreduce => "minimpi/allreduce",
            CollectiveKind::Gather => "minimpi/gather",
            CollectiveKind::Allgather => "minimpi/allgather",
            CollectiveKind::Scatter => "minimpi/scatter",
            CollectiveKind::Alltoall => "minimpi/alltoall",
            CollectiveKind::Scan => "minimpi/scan",
            CollectiveKind::Split => "minimpi/split",
            CollectiveKind::ReduceScatter => "minimpi/reduce_scatter",
        }
    }

    /// Inverse of `kind as u8`; `None` for values outside the enum.
    pub fn from_bits(bits: u8) -> Option<Self> {
        Some(match bits {
            1 => CollectiveKind::Barrier,
            2 => CollectiveKind::Bcast,
            3 => CollectiveKind::Reduce,
            4 => CollectiveKind::Allreduce,
            5 => CollectiveKind::Gather,
            6 => CollectiveKind::Allgather,
            7 => CollectiveKind::Scatter,
            8 => CollectiveKind::Alltoall,
            9 => CollectiveKind::Scan,
            10 => CollectiveKind::Split,
            11 => CollectiveKind::ReduceScatter,
            _ => return None,
        })
    }
}

/// A message in flight: source rank, tag, and type-erased payload.
pub struct Envelope {
    /// Rank of the sender within the communicator the message was sent on.
    pub src: usize,
    /// Matching tag.
    pub tag: Tag,
    /// Owned, type-erased payload. Downcast by the typed `recv`.
    pub payload: Box<dyn Any + Send>,
    /// Happens-before metadata piggybacked by the sanitizer: the
    /// sender's vector clock at send time, merged into the receiver's
    /// clock on delivery. `None` whenever the sanitizer is off.
    pub stamp: Option<sanitizer::Stamp>,
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Envelope")
            .field("src", &self.src)
            .field("tag", &self.tag)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_tags_are_not_collective() {
        assert!(!Tag::user(0).is_collective());
        assert!(!Tag::user(u32::MAX).is_collective());
    }

    #[test]
    fn collective_tags_are_collective_and_distinct_by_kind() {
        let a = Tag::collective(CollectiveKind::Bcast, 7);
        let b = Tag::collective(CollectiveKind::Reduce, 7);
        assert!(a.is_collective());
        assert_ne!(a, b);
    }

    #[test]
    fn collective_tags_distinct_by_epoch() {
        let a = Tag::collective(CollectiveKind::Bcast, 1);
        let b = Tag::collective(CollectiveKind::Bcast, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn collective_parts_round_trip() {
        let t = Tag::collective(CollectiveKind::Reduce, 42);
        assert_eq!(t.collective_parts(), Some((CollectiveKind::Reduce, 42)));
        assert_eq!(Tag::user(42).collective_parts(), None);
        assert_eq!(format!("{t}"), "Reduce@42");
        assert_eq!(format!("{}", Tag::user(7)), "user:7");
    }

    #[test]
    fn collective_epoch_wraps_without_touching_kind_bits() {
        let a = Tag::collective(CollectiveKind::Scan, u64::MAX);
        assert!(a.is_collective());
        // Kind bits survive epoch saturation.
        let kind_bits = (a.0 >> 48) & 0x7FFF;
        assert_eq!(kind_bits, CollectiveKind::Scan as u64);
    }
}
