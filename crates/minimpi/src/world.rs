//! Launching SPMD worlds: one thread per rank.

use std::sync::Arc;
use std::thread;

use crossbeam::channel::unbounded;

use crate::comm::Comm;
use crate::envelope::Envelope;

/// Entry point for running an SPMD program across `P` thread-backed ranks.
///
/// `World::run(p, f)` is the analogue of `mpiexec -n p`: it spawns `p`
/// threads, hands each a [`Comm`] of size `p`, runs `f` on every rank, and
/// returns the per-rank results indexed by rank.
pub struct World;

impl World {
    /// Run `f` on `size` ranks and collect each rank's return value.
    ///
    /// # Panics
    /// Propagates the first rank panic after all ranks have been joined
    /// (ranks that did not panic run to completion).
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(&Comm) -> T + Send + Sync + 'static,
    {
        WorldBuilder::new(size).run(f)
    }
}

/// Configurable world launcher.
///
/// The default stack size is raised above the OS default because science
/// proxies place sizable scratch buffers on the stack in debug builds.
pub struct WorldBuilder {
    size: usize,
    stack_size: usize,
    name_prefix: String,
}

impl WorldBuilder {
    /// A builder for a world of `size` ranks.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "world size must be at least 1");
        WorldBuilder {
            size,
            stack_size: 8 << 20,
            name_prefix: "rank".to_string(),
        }
    }

    /// Set the per-rank thread stack size in bytes.
    pub fn stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }

    /// Set the thread-name prefix (threads are named `{prefix}-{rank}`).
    pub fn name_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.name_prefix = prefix.into();
        self
    }

    /// Launch the world; see [`World::run`].
    pub fn run<T, F>(self, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(&Comm) -> T + Send + Sync + 'static,
    {
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..self.size).map(|_| unbounded::<Envelope>()).unzip();
        let senders = Arc::new(senders);
        let f = Arc::new(f);

        let handles: Vec<_> = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| {
                let senders = Arc::clone(&senders);
                let f = Arc::clone(&f);
                let name = format!("{}-{rank}", self.name_prefix);
                thread::Builder::new()
                    .name(name)
                    .stack_size(self.stack_size)
                    .spawn(move || {
                        let comm = Comm::new(rank, senders, rx);
                        f(&comm)
                    })
                    .expect("failed to spawn rank thread")
            })
            .collect();

        let mut results = Vec::with_capacity(self.size);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for handle in handles {
            match handle.join() {
                Ok(v) => results.push(v),
                Err(e) => {
                    if panic.is_none() {
                        panic = Some(e);
                    }
                }
            }
        }
        if let Some(e) = panic {
            std::panic::resume_unwind(e);
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_indexed_by_rank() {
        let out = World::run(8, |comm| comm.rank() * comm.rank());
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |comm| {
            assert_eq!(comm.size(), 1);
            comm.barrier();
            comm.allreduce_scalar(5u32, |a, b| a + b)
        });
        assert_eq!(out, vec![5]);
    }

    #[test]
    #[should_panic(expected = "world size must be at least 1")]
    fn zero_size_rejected() {
        let _ = World::run(0, |_| ());
    }

    #[test]
    fn builder_names_threads() {
        let names = WorldBuilder::new(2)
            .name_prefix("osc")
            .run(|_| thread::current().name().map(str::to_string));
        assert_eq!(
            names,
            vec![Some("osc-0".to_string()), Some("osc-1".to_string())]
        );
    }
}
