//! Launching SPMD worlds: one thread per rank.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crossbeam::channel::unbounded;

use crate::comm::Comm;
use crate::envelope::Envelope;
use crate::fault::FaultHandle;
use crate::monitor::{run_watchdog, FinishGuard, Monitor};
use crate::sched::{LivenessSpec, Sched, SchedFinishGuard, SchedPolicy, TraceCell};

/// Default watchdog grace period: how long every live rank must sit
/// blocked with zero matched messages before the world is declared
/// deadlocked. Generous enough that heavyweight compute phases between
/// receives never trip it (they leave at least one rank unblocked).
const DEFAULT_WATCHDOG_GRACE: Duration = Duration::from_secs(10);

/// Entry point for running an SPMD program across `P` thread-backed ranks.
///
/// `World::run(p, f)` is the analogue of `mpiexec -n p`: it spawns `p`
/// threads, hands each a [`Comm`] of size `p`, runs `f` on every rank, and
/// returns the per-rank results indexed by rank.
pub struct World;

impl World {
    /// Run `f` on `size` ranks and collect each rank's return value.
    ///
    /// # Panics
    /// Propagates the first rank panic after all ranks have been joined
    /// (ranks that did not panic run to completion).
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(&Comm) -> T + Send + Sync + 'static,
    {
        WorldBuilder::new(size).run(f)
    }
}

/// Configurable world launcher.
///
/// The default stack size is raised above the OS default because science
/// proxies place sizable scratch buffers on the stack in debug builds.
/// A deadlock watchdog is armed by default (see [`WorldBuilder::watchdog`]).
pub struct WorldBuilder {
    size: usize,
    stack_size: usize,
    name_prefix: String,
    watchdog: Option<Duration>,
    faults: Option<FaultHandle>,
    sched_policy: SchedPolicy,
    trace_cell: Option<TraceCell>,
    sanitizer: Option<Arc<sanitizer::Session>>,
    liveness: Option<LivenessSpec>,
}

impl WorldBuilder {
    /// A builder for a world of `size` ranks.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "world size must be at least 1");
        WorldBuilder {
            size,
            stack_size: 8 << 20,
            name_prefix: "rank".to_string(),
            watchdog: Some(DEFAULT_WATCHDOG_GRACE),
            faults: None,
            sched_policy: SchedPolicy::Os,
            trace_cell: None,
            sanitizer: None,
            liveness: None,
        }
    }

    /// Set the per-rank thread stack size in bytes.
    pub fn stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }

    /// Set the thread-name prefix (threads are named `{prefix}-{rank}`).
    pub fn name_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.name_prefix = prefix.into();
        self
    }

    /// Set the watchdog grace period. When every rank that has not yet
    /// returned sits blocked in a receive and no message is matched for
    /// `grace`, the watchdog dumps each rank's wait state and pending
    /// queue and aborts the world (each blocked rank panics with the
    /// report). Sends are eager, so this condition is a true deadlock.
    pub fn watchdog(mut self, grace: Duration) -> Self {
        self.watchdog = Some(grace);
        self
    }

    /// Disable deadlock detection (a deadlocked world then hangs, as a
    /// real MPI job would).
    pub fn without_watchdog(mut self) -> Self {
        self.watchdog = None;
        self
    }

    /// Install a fault-injection handle; see [`FaultHandle`]. Test-only
    /// machinery: without a handle the transport path is unchanged.
    pub fn fault_handle(mut self, faults: FaultHandle) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Choose the scheduling policy; see [`SchedPolicy`]. Non-`Os`
    /// policies serialize rank execution under the deterministic
    /// scheduler: rank threads run on virtual time, the wall-clock
    /// watchdog is replaced by *exact* deadlock detection (an empty
    /// ready set with live ranks), and every run records a delivery
    /// [`crate::Trace`]. On a rank panic the trace is printed to stderr
    /// so the interleaving can be replayed with [`SchedPolicy::Replay`].
    pub fn sched(mut self, policy: SchedPolicy) -> Self {
        self.sched_policy = policy;
        self
    }

    /// Deposit the run's delivery trace — also when a rank panics —
    /// into `cell` for programmatic retrieval (the [`crate::Explorer`]
    /// uses this). Only meaningful with a non-`Os` [`Self::sched`]
    /// policy.
    pub fn trace_cell(mut self, cell: &TraceCell) -> Self {
        self.trace_cell = Some(cell.clone());
        self
    }

    /// Arm bounded-fairness liveness analysis; see [`LivenessSpec`].
    /// Only meaningful with a non-`Os` [`Self::sched`] policy: the
    /// scheduler aborts the world (every rank panics with a per-rank
    /// progress dump) when the decision budget, a spin limit, or the
    /// starvation window is breached. The thresholds count scheduling
    /// decisions, not wall time, so a recorded trace replayed under the
    /// same spec reproduces the violation bitwise.
    pub fn liveness(mut self, spec: LivenessSpec) -> Self {
        self.liveness = Some(spec);
        self
    }

    /// Install a happens-before sanitizer session for this world; see
    /// the `sanitizer` crate. Every rank thread gets a per-rank
    /// context (vector clock + shadow-state hooks); world teardown
    /// runs the message/view leak check. Without this call the world
    /// still auto-installs a `Mode::Panic` session when the
    /// `SENSEI_SANITIZER` env var is set (checked per run).
    pub fn sanitizer(mut self, session: Arc<sanitizer::Session>) -> Self {
        self.sanitizer = Some(session);
        self
    }

    /// Launch the world; see [`World::run`].
    pub fn run<T, F>(self, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(&Comm) -> T + Send + Sync + 'static,
    {
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..self.size).map(|_| unbounded::<Envelope>()).unzip();
        let senders = Arc::new(senders);
        let f = Arc::new(f);
        let monitor = Monitor::new(self.size);
        let peer_slots: Arc<Vec<usize>> = Arc::new((0..self.size).collect());
        let sched = match &self.sched_policy {
            SchedPolicy::Os => None,
            policy => Some(Sched::new(self.size, policy, self.liveness)),
        };
        // Sanitizer session: explicit via the builder, else env-gated
        // (read every run so one process can toggle on/off runs).
        let session = self.sanitizer.clone().or_else(|| {
            sanitizer::env_enabled()
                .then(|| sanitizer::Session::new(self.size, sanitizer::Mode::Panic))
        });
        if let Some(session) = &session {
            // Stamp findings with the replay seed of this schedule.
            session.set_seed(match &self.sched_policy {
                SchedPolicy::Seeded(seed) => Some(*seed),
                SchedPolicy::Replay(trace) => trace.seed,
                SchedPolicy::Os | SchedPolicy::Guided(_) => None,
            });
        }

        // Under the deterministic scheduler deadlocks are detected
        // exactly (empty ready set), so the wall-clock watchdog — which
        // would misread serialized execution as stalling — stays off.
        if let (Some(grace), None) = (self.watchdog, &sched) {
            let monitor = Arc::clone(&monitor);
            // Detached: exits on its own shortly after the last rank
            // finishes (or after triggering an abort).
            thread::Builder::new()
                .name(format!("{}-watchdog", self.name_prefix))
                .spawn(move || run_watchdog(monitor, grace))
                .unwrap_or_else(|e| panic!("failed to spawn watchdog thread: {e}"));
        }

        let handles: Vec<_> = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| {
                let senders = Arc::clone(&senders);
                let f = Arc::clone(&f);
                let monitor = Arc::clone(&monitor);
                let peer_slots = Arc::clone(&peer_slots);
                let faults = self.faults.clone();
                let sched = sched.clone();
                let session = session.clone();
                let name = format!("{}-{rank}", self.name_prefix);
                thread::Builder::new()
                    .name(name)
                    .stack_size(self.stack_size)
                    .spawn(move || {
                        // Scheduled ranks run on the deterministic
                        // virtual clock so recorded timings are
                        // byte-identical across same-seed runs.
                        let _vt = sched.as_ref().map(|_| probe::time::install_virtual());
                        // Per-rank sanitizer context: this thread's
                        // vector clock plus the hooks the transport
                        // and data model call into.
                        let _san = session
                            .as_ref()
                            .map(|s| sanitizer::install(Arc::clone(s), rank));
                        // Marks the rank finished even on unwind, so the
                        // watchdog never waits on a dead rank.
                        let _finish = FinishGuard {
                            monitor: Arc::clone(&monitor),
                            slot: rank,
                        };
                        // Thread-local scheduler handle so spin loops
                        // deep in library code (broker backpressure)
                        // can reach crate::sched::yield_point().
                        let _sched_tls = sched
                            .as_ref()
                            .map(|s| crate::sched::install_thread(s, rank));
                        // Waits for the first turn grant; releases this
                        // rank's scheduler slot even on unwind so the
                        // remaining ranks keep scheduling.
                        let _sched_finish = sched.as_ref().map(|s| {
                            s.acquire(rank);
                            SchedFinishGuard {
                                sched: Arc::clone(s),
                                slot: rank,
                            }
                        });
                        let comm = Comm::new(rank, senders, rx).with_runtime(
                            rank,
                            peer_slots,
                            if sched.is_some() { None } else { Some(monitor) },
                            faults,
                            sched,
                        );
                        f(&comm)
                    })
                    .unwrap_or_else(|e| panic!("failed to spawn rank thread: {e}"))
            })
            .collect();

        let mut results = Vec::with_capacity(self.size);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for handle in handles {
            match handle.join() {
                Ok(v) => results.push(v),
                Err(e) => {
                    if panic.is_none() {
                        panic = Some(e);
                    }
                }
            }
        }
        // Sanitizer leak check: only when every rank returned cleanly
        // (after a rank panic, unconsumed messages are expected
        // fallout, not leaks). A Panic-mode finding here unwinds like
        // a rank panic so the trace-printing path below still runs.
        if panic.is_none() {
            if let Some(session) = &session {
                let check = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    session.finish_world();
                }));
                if let Err(e) = check {
                    panic = Some(e);
                }
            }
        }
        if let Some(sched) = &sched {
            let trace = sched.trace();
            if panic.is_some() {
                let seed = trace
                    .seed
                    .map_or_else(|| "<replay>".to_string(), |s| s.to_string());
                eprintln!(
                    "minimpi sched: world failed under seed {seed}; replay this exact \
                     interleaving with WorldBuilder::sched(SchedPolicy::Replay(trace)) \
                     where trace is parsed from:\n{}",
                    trace.to_json()
                );
            }
            if let Some(cell) = &self.trace_cell {
                cell.set(trace);
            }
        }
        if let Some(e) = panic {
            std::panic::resume_unwind(e);
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_indexed_by_rank() {
        let out = World::run(8, |comm| comm.rank() * comm.rank());
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |comm| {
            assert_eq!(comm.size(), 1);
            comm.barrier();
            comm.allreduce_scalar(5u32, |a, b| a + b)
        });
        assert_eq!(out, vec![5]);
    }

    #[test]
    #[should_panic(expected = "world size must be at least 1")]
    fn zero_size_rejected() {
        let _ = World::run(0, |_| ());
    }

    #[test]
    fn builder_names_threads() {
        let names = WorldBuilder::new(2)
            .name_prefix("osc")
            .run(|_| thread::current().name().map(str::to_string));
        assert_eq!(
            names,
            vec![Some("osc-0".to_string()), Some("osc-1".to_string())]
        );
    }

    #[test]
    fn watchdog_does_not_fire_on_healthy_runs() {
        // A short grace with constant traffic: progress resets the timer.
        let out = WorldBuilder::new(4)
            .watchdog(Duration::from_millis(100))
            .run(|comm| {
                let mut acc = 0u64;
                for _ in 0..20 {
                    acc = comm.allreduce_scalar(acc + comm.rank() as u64, |a, b| a + b);
                }
                acc
            });
        assert_eq!(out.len(), 4);
    }
}
