//! Deadlock monitoring: per-rank blocked-state slots and the watchdog.
//!
//! Soundness rests on the eager send protocol: a send never blocks, so if
//! every live rank sits in a blocking receive and no message has been
//! matched for a full grace period, no rank can ever make progress again —
//! a true deadlock, not a slow phase. The watchdog then publishes a report
//! of every rank's wait state (who it waits for, on what tag, and what is
//! sitting unmatched in its pending queue) and raises the abort flag;
//! each blocked rank notices the flag on its next poll tick and panics
//! with the report, turning a silent hang into a diagnosable failure.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use probe::time::Wall;

use parking_lot::Mutex;

use crate::envelope::{Tag, ANY_SOURCE};

/// How many pending-queue entries a blocked-state dump lists per rank.
const PENDING_DUMP_CAP: usize = 8;

/// What a rank is blocked on, published while it waits in a recv.
#[derive(Clone)]
pub(crate) struct BlockedInfo {
    /// Rank within the communicator doing the recv.
    pub comm_rank: usize,
    /// Size of that communicator (world vs. sub context in the dump).
    pub comm_size: usize,
    /// Awaited source rank within the communicator ([`ANY_SOURCE`] = any).
    pub src: usize,
    /// World slot of the awaited source, when `src` is specific.
    pub src_slot: Option<usize>,
    /// Awaited tag.
    pub tag: Tag,
    /// When the rank started waiting.
    pub since: Wall,
    /// Snapshot of unmatched `(src, tag)` pairs in the pending queue.
    pub pending: Vec<(usize, Tag)>,
}

#[derive(Default)]
struct RankSlot {
    blocked: Mutex<Option<BlockedInfo>>,
    finished: AtomicBool,
    /// Bumped every time this rank matches a message.
    progress: AtomicU64,
}

/// World-wide monitor shared by every rank's `Comm` and the watchdog.
pub(crate) struct Monitor {
    slots: Vec<RankSlot>,
    abort: AtomicBool,
    report: Mutex<String>,
}

impl Monitor {
    pub fn new(size: usize) -> Arc<Self> {
        Arc::new(Monitor {
            slots: (0..size).map(|_| RankSlot::default()).collect(),
            abort: AtomicBool::new(false),
            report: Mutex::new(String::new()),
        })
    }

    pub fn note_progress(&self, slot: usize) {
        self.slots[slot].progress.fetch_add(1, Ordering::Relaxed);
    }

    pub fn publish_blocked(&self, slot: usize, info: BlockedInfo) {
        *self.slots[slot].blocked.lock() = Some(info);
    }

    pub fn update_pending(&self, slot: usize, pending: Vec<(usize, Tag)>) {
        if let Some(info) = self.slots[slot].blocked.lock().as_mut() {
            info.pending = pending;
        }
    }

    pub fn clear_blocked(&self, slot: usize) {
        *self.slots[slot].blocked.lock() = None;
    }

    pub fn mark_finished(&self, slot: usize) {
        self.slots[slot].finished.store(true, Ordering::Release);
    }

    pub fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    pub fn report(&self) -> String {
        self.report.lock().clone()
    }

    fn all_finished(&self) -> bool {
        self.slots
            .iter()
            .all(|s| s.finished.load(Ordering::Acquire))
    }

    fn total_progress(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.progress.load(Ordering::Relaxed))
            .sum()
    }

    /// True when every rank that has not finished is blocked in a recv,
    /// and at least one such rank exists.
    fn all_live_blocked(&self) -> (bool, usize) {
        let mut live = 0;
        for slot in &self.slots {
            if slot.finished.load(Ordering::Acquire) {
                continue;
            }
            live += 1;
            if slot.blocked.lock().is_none() {
                return (false, live);
            }
        }
        (live > 0, live)
    }

    /// Compose the per-rank dump and raise the abort flag.
    fn trigger_abort(&self, live: usize, grace: Duration) {
        let mut report = format!(
            "minimpi watchdog: deadlock detected — all {live} live rank(s) blocked in recv \
             with no progress for {grace:?}:"
        );
        for (slot, state) in self.slots.iter().enumerate() {
            if state.finished.load(Ordering::Acquire) {
                continue;
            }
            let Some(info) = state.blocked.lock().clone() else {
                continue;
            };
            let src = if info.src == ANY_SOURCE {
                "any source".to_string()
            } else if let Some(world) = info.src_slot.filter(|w| *w != info.src) {
                format!("src {} (world rank {world})", info.src)
            } else {
                format!("src {}", info.src)
            };
            report.push_str(&format!(
                "\n  world rank {slot}: rank {}/{} waiting for {src}, tag {}, blocked {:.3}s; \
                 pending ({})",
                info.comm_rank,
                info.comm_size,
                info.tag,
                info.since.elapsed().as_secs_f64(),
                info.pending.len(),
            ));
            if info.pending.is_empty() {
                report.push_str(": []");
            } else {
                let shown: Vec<String> = info
                    .pending
                    .iter()
                    .take(PENDING_DUMP_CAP)
                    .map(|(src, tag)| format!("from {src}: {tag}"))
                    .collect();
                let ellipsis = if info.pending.len() > PENDING_DUMP_CAP {
                    ", ..."
                } else {
                    ""
                };
                report.push_str(&format!(": [{}{ellipsis}]", shown.join(", ")));
            }
        }
        *self.report.lock() = report;
        self.abort.store(true, Ordering::Release);
    }
}

/// Watchdog loop: runs on its own thread until the world finishes or a
/// deadlock is detected. `grace` is how long the all-blocked/no-progress
/// condition must hold before aborting.
pub(crate) fn run_watchdog(monitor: Arc<Monitor>, grace: Duration) {
    let poll = (grace / 8).clamp(Duration::from_millis(5), Duration::from_millis(250));
    let mut stuck: Option<(Wall, u64)> = None;
    loop {
        std::thread::sleep(poll);
        if monitor.all_finished() || monitor.aborted() {
            return;
        }
        let (all_blocked, live) = monitor.all_live_blocked();
        if !all_blocked {
            stuck = None;
            continue;
        }
        let progress = monitor.total_progress();
        match stuck {
            Some((t0, p0)) if p0 == progress => {
                if t0.elapsed() >= grace {
                    monitor.trigger_abort(live, grace);
                    return;
                }
            }
            _ => stuck = Some((Wall::now(), progress)),
        }
    }
}

/// Marks a rank finished when dropped, so the watchdog stops counting it
/// as live even when the rank unwinds from a panic.
pub(crate) struct FinishGuard {
    pub monitor: Arc<Monitor>,
    pub slot: usize,
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        self.monitor.mark_finished(self.slot);
    }
}
