//! The communicator: typed, tagged point-to-point messaging.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::envelope::{CollectiveKind, Envelope, Tag, ANY_SOURCE};

/// An MPI-style communicator handle owned by one rank (one thread).
///
/// A `Comm` is *not* `Sync`: exactly one thread drives each rank, matching
/// the single-threaded-per-rank MPI funneled model the paper's codes use.
/// Intra-rank threading (rayon loops inside a rank) must not touch the
/// communicator, just as `MPI_THREAD_FUNNELED` requires.
pub struct Comm {
    rank: usize,
    senders: Arc<Vec<Sender<Envelope>>>,
    receiver: Receiver<Envelope>,
    /// Messages received but not yet matched by a `recv` call.
    pending: RefCell<VecDeque<Envelope>>,
    /// Count of collective operations issued, used to build collective tags.
    epoch: Cell<u64>,
    /// Wall-clock origin for [`Comm::wtime`].
    t0: Instant,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        senders: Arc<Vec<Sender<Envelope>>>,
        receiver: Receiver<Envelope>,
    ) -> Self {
        Comm {
            rank,
            senders,
            receiver,
            pending: RefCell::new(VecDeque::new()),
            epoch: Cell::new(0),
            t0: Instant::now(),
        }
    }

    /// This rank's index in `0..size()`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Seconds since this communicator was created (cf. `MPI_Wtime`).
    pub fn wtime(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    /// Advance and return the collective epoch for this communicator.
    pub(crate) fn next_epoch(&self) -> u64 {
        let e = self.epoch.get();
        self.epoch.set(e.wrapping_add(1));
        e
    }

    /// Send `value` to `dest` with a user `tag`. Sends are buffered and
    /// never block (eager protocol); ownership of the payload moves.
    ///
    /// # Panics
    /// Panics if `dest` is out of range or the destination rank has exited.
    pub fn send<T: Send + 'static>(&self, dest: usize, tag: u32, value: T) {
        self.send_tagged(dest, Tag::user(tag), value)
    }

    pub(crate) fn send_tagged<T: Send + 'static>(&self, dest: usize, tag: Tag, value: T) {
        let sender = self
            .senders
            .get(dest)
            .unwrap_or_else(|| panic!("send: rank {dest} out of range (size {})", self.size()));
        sender
            .send(Envelope {
                src: self.rank,
                tag,
                payload: Box::new(value),
            })
            .expect("send: destination rank disconnected");
    }

    /// Blocking receive of a `T` from `src` with user `tag`.
    ///
    /// Matching is FIFO per `(src, tag)` pair, mirroring MPI's
    /// non-overtaking guarantee. Pass [`ANY_SOURCE`] as `src` to match any
    /// sender.
    ///
    /// # Panics
    /// Panics if the matched payload is not a `T`, or all senders hang up.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u32) -> T {
        self.recv_tagged(src, Tag::user(tag)).1
    }

    /// Blocking receive matching any source; returns `(src, value)`.
    pub fn recv_any<T: Send + 'static>(&self, tag: u32) -> (usize, T) {
        self.recv_tagged(ANY_SOURCE, Tag::user(tag))
    }

    pub(crate) fn recv_tagged<T: Send + 'static>(&self, src: usize, tag: Tag) -> (usize, T) {
        let env = self.match_envelope(src, tag);
        let from = env.src;
        (from, downcast_payload(env.payload, from, tag))
    }

    /// Non-blocking probe: is a message matching `(src, tag)` available?
    pub fn iprobe(&self, src: usize, tag: u32) -> bool {
        self.drain_channel();
        let tag = Tag::user(tag);
        self.pending
            .borrow()
            .iter()
            .any(|e| e.tag == tag && (src == ANY_SOURCE || e.src == src))
    }

    /// Combined send + receive with the same tag (pairwise exchange).
    /// Never deadlocks because sends are eager.
    pub fn sendrecv<T: Send + 'static, U: Send + 'static>(
        &self,
        dest: usize,
        src: usize,
        tag: u32,
        value: T,
    ) -> U {
        self.send(dest, tag, value);
        self.recv(src, tag)
    }

    /// Pull everything currently queued in the channel into `pending`.
    fn drain_channel(&self) {
        let mut pending = self.pending.borrow_mut();
        while let Ok(env) = self.receiver.try_recv() {
            pending.push_back(env);
        }
    }

    /// Block until an envelope matching `(src, tag)` is available and
    /// remove it from the pending queue.
    fn match_envelope(&self, src: usize, tag: Tag) -> Envelope {
        // Fast path: already pending.
        if let Some(env) = self.take_pending(src, tag) {
            return env;
        }
        loop {
            let env = self
                .receiver
                .recv()
                .expect("recv: all peer ranks disconnected while waiting for a message");
            if env.tag == tag && (src == ANY_SOURCE || env.src == src) {
                return env;
            }
            self.pending.borrow_mut().push_back(env);
        }
    }

    fn take_pending(&self, src: usize, tag: Tag) -> Option<Envelope> {
        let mut pending = self.pending.borrow_mut();
        let idx = pending
            .iter()
            .position(|e| e.tag == tag && (src == ANY_SOURCE || e.src == src))?;
        pending.remove(idx)
    }

    /// Collectively split this communicator into disjoint subgroups.
    ///
    /// Ranks passing the same `color` end up in the same new communicator;
    /// within a group, new ranks are ordered by `(key, old rank)`. Every
    /// rank of `self` must call `split`. Analogous to `MPI_Comm_split`.
    pub fn split(&self, color: u32, key: u32) -> Comm {
        let (tx, rx) = unbounded::<Envelope>();
        let epoch = self.next_epoch();
        let tag = Tag::collective(CollectiveKind::Split, epoch);
        let mine = SplitInfo {
            color,
            key,
            old_rank: self.rank,
            sender: tx,
        };
        let infos: Vec<SplitInfo> = crate::collectives::allgather_tagged(self, tag, mine);
        let mut members: Vec<&SplitInfo> = infos.iter().filter(|i| i.color == color).collect();
        members.sort_by_key(|i| (i.key, i.old_rank));
        let new_rank = members
            .iter()
            .position(|i| i.old_rank == self.rank)
            .expect("split: own rank missing from its color group");
        let senders: Vec<Sender<Envelope>> = members.iter().map(|i| i.sender.clone()).collect();
        Comm::new(new_rank, Arc::new(senders), rx)
    }

    /// Collectively duplicate this communicator (cf. `MPI_Comm_dup`).
    ///
    /// The duplicate has an independent tag/epoch space, so libraries can
    /// communicate on it without colliding with application messages.
    pub fn dup(&self) -> Comm {
        self.split(0, self.rank as u32)
    }
}

#[derive(Clone)]
struct SplitInfo {
    color: u32,
    key: u32,
    old_rank: usize,
    sender: Sender<Envelope>,
}

fn downcast_payload<T: 'static>(payload: Box<dyn Any + Send>, src: usize, tag: Tag) -> T {
    match payload.downcast::<T>() {
        Ok(v) => *v,
        Err(_) => panic!(
            "recv: message from rank {src} with tag {tag:?} is not a {}",
            std::any::type_name::<T>()
        ),
    }
}

#[cfg(test)]
mod tests {
    use crate::World;

    #[test]
    fn ping_pong() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0f64, 2.0, 3.0]);
                let back: Vec<f64> = comm.recv(1, 8);
                assert_eq!(back, vec![2.0, 4.0, 6.0]);
            } else {
                let v: Vec<f64> = comm.recv(0, 7);
                comm.send(0, 8, v.into_iter().map(|x| x * 2.0).collect::<Vec<_>>());
            }
        });
    }

    #[test]
    fn tag_matching_is_selective() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for 1 first.
                comm.send(1, 2, 222u32);
                comm.send(1, 1, 111u32);
            } else {
                let one: u32 = comm.recv(0, 1);
                let two: u32 = comm.recv(0, 2);
                assert_eq!((one, two), (111, 222));
            }
        });
    }

    #[test]
    fn per_source_fifo_order() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..100u32 {
                    comm.send(1, 5, i);
                }
            } else {
                for i in 0..100u32 {
                    let got: u32 = comm.recv(0, 5);
                    assert_eq!(got, i);
                }
            }
        });
    }

    #[test]
    fn recv_any_source() {
        World::run(4, |comm| {
            if comm.rank() == 0 {
                let mut seen = vec![false; 4];
                for _ in 0..3 {
                    let (src, v): (usize, usize) = comm.recv_any(9);
                    assert_eq!(v, src * 10);
                    seen[src] = true;
                }
                assert_eq!(seen, vec![false, true, true, true]);
            } else {
                comm.send(0, 9, comm.rank() * 10);
            }
        });
    }

    #[test]
    fn sendrecv_ring_shift() {
        World::run(5, |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            let got: usize = comm.sendrecv(right, left, 3, comm.rank());
            assert_eq!(got, left);
        });
    }

    #[test]
    fn split_into_even_odd_groups() {
        World::run(6, |comm| {
            let color = (comm.rank() % 2) as u32;
            let sub = comm.split(color, comm.rank() as u32);
            assert_eq!(sub.size(), 3);
            assert_eq!(sub.rank(), comm.rank() / 2);
            // The subgroup communicates independently of the parent.
            let total = sub.allreduce_scalar(comm.rank(), |a, b| a + b);
            let expect = if color == 0 { 6 } else { 1 + 3 + 5 };
            assert_eq!(total, expect);
        });
    }

    #[test]
    fn split_with_key_reorders() {
        World::run(4, |comm| {
            // Reverse order via key.
            let key = (comm.size() - comm.rank()) as u32;
            let sub = comm.split(0, key);
            assert_eq!(sub.rank(), comm.size() - 1 - comm.rank());
        });
    }

    #[test]
    fn dup_is_independent() {
        World::run(3, |comm| {
            let dup = comm.dup();
            assert_eq!(dup.rank(), comm.rank());
            assert_eq!(dup.size(), comm.size());
            // Same tag on both communicators does not cross over.
            if comm.rank() == 0 {
                comm.send(1, 4, 1u8);
                dup.send(1, 4, 2u8);
            } else if comm.rank() == 1 {
                let b: u8 = dup.recv(0, 4);
                let a: u8 = comm.recv(0, 4);
                assert_eq!((a, b), (1, 2));
            }
        });
    }

    #[test]
    fn iprobe_sees_pending_message() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 11, 42u64);
                comm.barrier();
            } else {
                comm.barrier();
                assert!(comm.iprobe(0, 11));
                assert!(!comm.iprobe(0, 12));
                let v: u64 = comm.recv(0, 11);
                assert_eq!(v, 42);
            }
        });
    }

    #[test]
    #[should_panic(expected = "is not a")]
    fn type_mismatch_panics() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 1.5f64);
            } else {
                let _: u32 = comm.recv(0, 1);
            }
        });
    }
}
