//! The communicator: typed, tagged point-to-point messaging.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use probe::time::Wall;

use crate::envelope::{CollectiveKind, Envelope, Tag, ANY_SOURCE};
use crate::fault::{FaultAction, FaultHandle};
use crate::monitor::{BlockedInfo, Monitor};
use crate::sched::{Sched, WaitInfo, Wake};

/// How often a blocked receive wakes up to poll the watchdog abort flag
/// and (when set) its deadline. Bounds the latency between the watchdog
/// raising an abort and every blocked rank panicking with the report.
const POLL_TICK: Duration = Duration::from_millis(25);

/// An MPI-style communicator handle owned by one rank (one thread).
///
/// A `Comm` is *not* `Sync`: exactly one thread drives each rank, matching
/// the single-threaded-per-rank MPI funneled model the paper's codes use.
/// Intra-rank threading (rayon loops inside a rank) must not touch the
/// communicator, just as `MPI_THREAD_FUNNELED` requires.
pub struct Comm {
    rank: usize,
    senders: Arc<Vec<Sender<Envelope>>>,
    receiver: Receiver<Envelope>,
    /// Messages received but not yet matched by a `recv` call.
    pending: RefCell<VecDeque<Envelope>>,
    /// Count of collective operations issued, used to build collective tags.
    epoch: Cell<u64>,
    /// Clock origin for [`Comm::wtime`], in [`probe::time`] seconds —
    /// wall clock normally, deterministic virtual ticks under the
    /// scheduler.
    t0: f64,
    /// This rank's slot in the *world* (stable across `split`); used to
    /// key monitor state and fault rules.
    slot: usize,
    /// World slot of each rank in this communicator (`peer_slots[rank]`).
    peer_slots: Arc<Vec<usize>>,
    /// Shared deadlock monitor, when launched under a [`crate::World`].
    monitor: Option<Arc<Monitor>>,
    /// Injected transport faults, when installed for a test.
    faults: Option<FaultHandle>,
    /// Deterministic scheduler, when launched under a non-`Os`
    /// [`crate::SchedPolicy`]. Interposes on every delivery, blocking
    /// receive, and `ANY_SOURCE` match.
    sched: Option<Arc<Sched>>,
    /// Observability handle; [`probe::off`] (a no-op) by default.
    probe: RefCell<probe::Probe>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        senders: Arc<Vec<Sender<Envelope>>>,
        receiver: Receiver<Envelope>,
    ) -> Self {
        let size = senders.len();
        Comm {
            rank,
            senders,
            receiver,
            pending: RefCell::new(VecDeque::new()),
            epoch: Cell::new(0),
            t0: probe::time::now_seconds(),
            slot: rank,
            peer_slots: Arc::new((0..size).collect()),
            monitor: None,
            faults: None,
            sched: None,
            probe: RefCell::new(probe::off()),
        }
    }

    /// Attach world identity and instrumentation (monitor, faults,
    /// deterministic scheduler).
    pub(crate) fn with_runtime(
        mut self,
        slot: usize,
        peer_slots: Arc<Vec<usize>>,
        monitor: Option<Arc<Monitor>>,
        faults: Option<FaultHandle>,
        sched: Option<Arc<Sched>>,
    ) -> Self {
        self.slot = slot;
        self.peer_slots = peer_slots;
        self.monitor = monitor;
        self.faults = faults;
        self.sched = sched;
        self
    }

    /// Attach an observability probe: subsequent sends count messages
    /// and (estimated) payload bytes per collective kind, and
    /// collective entries count invocations. Communicators derived via
    /// [`Comm::split`] / [`Comm::dup`] inherit the probe.
    pub fn attach_probe(&self, probe: probe::Probe) {
        *self.probe.borrow_mut() = probe;
    }

    /// A clone of the attached probe ([`probe::off`] if none): the
    /// channel through which analyses record sub-spans and gauges next
    /// to the transport's own counters.
    pub fn probe(&self) -> probe::Probe {
        self.probe.borrow().clone()
    }

    /// This rank's index in `0..size()`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Seconds since this communicator was created (cf. `MPI_Wtime`).
    /// Under the deterministic scheduler this reads the per-thread
    /// virtual clock, so identical seeds report identical times.
    pub fn wtime(&self) -> f64 {
        (probe::time::now_seconds() - self.t0).max(0.0)
    }

    /// Record an interactive query/steering command in the world's
    /// delivery trace: `client` issued a command whose serialized
    /// payload hashes to `digest`, applied by this rank at bridge step
    /// `step`. Under [`crate::SchedPolicy::Os`] this is a no-op; under
    /// the deterministic scheduler the event lands in the [`crate::Trace`]
    /// and is verified in schedule position on replay, making an
    /// interactive session a reproducible artifact.
    pub fn record_interactive(&self, client: u64, step: u64, digest: u64) {
        if let Some(sched) = &self.sched {
            sched.on_interactive(self.slot, client, step, digest);
        }
    }

    /// Advance and return the collective epoch for this communicator.
    pub(crate) fn next_epoch(&self) -> u64 {
        let e = self.epoch.get();
        self.epoch.set(e.wrapping_add(1));
        e
    }

    /// Build the tag for one collective invocation, counting the call
    /// on the attached probe. Called unconditionally at collective
    /// entry (before any single-rank fast path) so invocation counts
    /// are identical at every communicator size.
    pub(crate) fn collective_tag(&self, kind: CollectiveKind) -> Tag {
        let probe = self.probe.borrow();
        if probe.is_enabled() {
            probe.call(kind.counter_name());
        }
        Tag::collective(kind, self.next_epoch())
    }

    /// Send `value` to `dest` with a user `tag`. Sends are buffered and
    /// never block (eager protocol); ownership of the payload moves.
    ///
    /// # Panics
    /// Panics if `dest` is out of range or the destination rank has exited.
    pub fn send<T: Send + 'static>(&self, dest: usize, tag: u32, value: T) {
        self.send_tagged(dest, Tag::user(tag), value)
    }

    /// Non-panicking send: returns `false` when the destination rank has
    /// already exited (its channel is gone) instead of panicking, so
    /// best-effort protocol messages (acks to a possibly-dead peer) do not
    /// take the sender down with the failure.
    ///
    /// # Panics
    /// Still panics if `dest` is out of range — that is a program bug, not
    /// a runtime failure.
    pub fn try_send<T: Send + 'static>(&self, dest: usize, tag: u32, value: T) -> bool {
        self.try_send_tagged(dest, Tag::user(tag), value)
    }

    pub(crate) fn send_tagged<T: Send + 'static>(&self, dest: usize, tag: Tag, value: T) {
        if !self.try_send_tagged(dest, tag, value) {
            panic!(
                "send: destination rank disconnected (rank {} sending tag {tag} to rank {dest})",
                self.rank
            );
        }
    }

    /// Shared send path; applies injected faults. A fault-dropped message
    /// counts as delivered from the sender's perspective.
    fn try_send_tagged<T: Send + 'static>(&self, dest: usize, tag: Tag, value: T) -> bool {
        let sender = self
            .senders
            .get(dest)
            .unwrap_or_else(|| panic!("send: rank {dest} out of range (size {})", self.size()));
        {
            // Send-side accounting (each message counts exactly once
            // across the job). A no-op unless a probe is attached.
            let probe = self.probe.borrow();
            if probe.is_enabled() {
                let name = match tag.collective_parts() {
                    Some((kind, _)) => kind.counter_name(),
                    None => "minimpi/p2p",
                };
                if !tag.is_collective() {
                    probe.call(name);
                }
                probe.message(name, payload_bytes(&value) as u64);
            }
        }
        // Sanitizer stamp: ticks this rank's vector clock and registers
        // the message as in flight. Registered *before* the fault check
        // so a fault-dropped message stays registered — exactly the
        // leak the teardown check reports. `None` when the sanitizer
        // is off (the common case: one thread-local read).
        let to_slot = self.peer_slots.get(dest).copied().unwrap_or(dest);
        let stamp = sanitizer::on_send(to_slot, || tag.to_string());
        if let Some(faults) = &self.faults {
            match faults.action(self.slot, to_slot) {
                FaultAction::Deliver => {}
                FaultAction::Drop => {
                    faults.note_dropped();
                    return true;
                }
                // Under the deterministic scheduler an injected link
                // delay advances the virtual clock instead of sleeping,
                // so delayed runs stay schedule-reproducible.
                FaultAction::Delay(d) => match &self.sched {
                    Some(sched) => sched.advance_clock(d),
                    None => std::thread::sleep(d),
                },
            }
        }
        let delivered = sender
            .send(Envelope {
                src: self.rank,
                tag,
                payload: Box::new(value),
                stamp: stamp.clone(),
            })
            .is_ok();
        if delivered {
            if let Some(sched) = &self.sched {
                sched.on_send(self.slot, to_slot, tag);
            }
        } else if let Some(stamp) = &stamp {
            // The receiver's channel is gone: the message never entered
            // flight, so it must not count as a leak.
            sanitizer::cancel_send(stamp);
        }
        delivered
    }

    /// Blocking receive of a `T` from `src` with user `tag`.
    ///
    /// Matching is FIFO per `(src, tag)` pair, mirroring MPI's
    /// non-overtaking guarantee. Pass [`ANY_SOURCE`] as `src` to match any
    /// sender.
    ///
    /// # Panics
    /// Panics if the matched payload is not a `T`, or all senders hang up.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u32) -> T {
        self.recv_tagged(src, Tag::user(tag)).1
    }

    /// Blocking receive matching any source; returns `(src, value)`.
    pub fn recv_any<T: Send + 'static>(&self, tag: u32) -> (usize, T) {
        self.recv_tagged(ANY_SOURCE, Tag::user(tag))
    }

    /// Receive with a deadline: like [`Comm::recv`], but gives up after
    /// `timeout` and returns [`crate::Error::DeadlineExceeded`] carrying a
    /// snapshot of this rank's unmatched pending queue — the raw material
    /// for diagnosing who stopped talking.
    pub fn recv_deadline<T: Send + 'static>(
        &self,
        src: usize,
        tag: u32,
        timeout: Duration,
    ) -> crate::Result<(usize, T)> {
        let tag = Tag::user(tag);
        let env = self.match_envelope_deadline(src, tag, Some(timeout))?;
        let from = env.src;
        Ok((from, downcast_payload(env.payload, from, tag)))
    }

    pub(crate) fn recv_tagged<T: Send + 'static>(&self, src: usize, tag: Tag) -> (usize, T) {
        let env = self.match_envelope(src, tag);
        let from = env.src;
        (from, downcast_payload(env.payload, from, tag))
    }

    /// Poll/select-style multi-peer wait: block until a message with
    /// `tag` arrives from *any* rank in `sources`, and return
    /// `(src, value)`. Messages from ranks outside the set stay queued
    /// untouched, unlike [`Comm::recv_any`] which matches everyone.
    ///
    /// This is the event-loop primitive a single dispatcher needs to
    /// serve N peers without dedicating a thread (or a fixed-order
    /// blocking receive) to each link: whichever peer is ready first is
    /// served first.
    ///
    /// # Panics
    /// Panics if `sources` is empty — a select over nothing can never
    /// complete and is a program bug, not a runtime failure.
    pub fn recv_any_of<T: Send + 'static>(&self, sources: &[usize], tag: u32) -> (usize, T) {
        let tag = Tag::user(tag);
        let env = self
            .match_any_of_deadline(sources, tag, None)
            .unwrap_or_else(|_| unreachable!("select without a deadline cannot time out"));
        let from = env.src;
        (from, downcast_payload(env.payload, from, tag))
    }

    /// [`Comm::recv_any_of`] with a deadline: gives up after `timeout`
    /// and returns [`crate::Error::DeadlineExceeded`]. A timeout means
    /// *every* rank in the set was silent for the whole window, which is
    /// exactly the evidence a caller needs to declare the stragglers
    /// dead in one decision instead of one full deadline per peer.
    pub fn recv_any_of_deadline<T: Send + 'static>(
        &self,
        sources: &[usize],
        tag: u32,
        timeout: Duration,
    ) -> crate::Result<(usize, T)> {
        let tag = Tag::user(tag);
        let env = self.match_any_of_deadline(sources, tag, Some(timeout))?;
        let from = env.src;
        Ok((from, downcast_payload(env.payload, from, tag)))
    }

    /// Non-blocking probe: is a message matching `(src, tag)` available?
    pub fn iprobe(&self, src: usize, tag: u32) -> bool {
        self.drain_channel();
        let tag = Tag::user(tag);
        self.pending
            .borrow()
            .iter()
            .any(|e| e.tag == tag && (src == ANY_SOURCE || e.src == src))
    }

    /// Combined send + receive with the same tag (pairwise exchange).
    /// Never deadlocks because sends are eager.
    pub fn sendrecv<T: Send + 'static, U: Send + 'static>(
        &self,
        dest: usize,
        src: usize,
        tag: u32,
        value: T,
    ) -> U {
        self.send(dest, tag, value);
        self.recv(src, tag)
    }

    /// Pull everything currently queued in the channel into `pending`.
    fn drain_channel(&self) {
        let mut pending = self.pending.borrow_mut();
        while let Ok(env) = self.receiver.try_recv() {
            pending.push_back(env);
        }
    }

    /// Block until an envelope matching `(src, tag)` is available and
    /// remove it from the pending queue.
    fn match_envelope(&self, src: usize, tag: Tag) -> Envelope {
        self.match_envelope_deadline(src, tag, None)
            .unwrap_or_else(|_| unreachable!("recv without a deadline cannot time out"))
    }

    /// Matching engine behind every receive. While blocked it publishes
    /// its wait state to the watchdog monitor, polls the abort flag, and
    /// verifies collective order on every non-matching envelope.
    fn match_envelope_deadline(
        &self,
        src: usize,
        tag: Tag,
        deadline: Option<Duration>,
    ) -> crate::Result<Envelope> {
        if let Some(sched) = self.sched.clone() {
            return self.match_envelope_sched(&sched, src, tag, deadline);
        }
        // Fast path: already pending.
        if let Some(env) = self.take_pending(src, tag) {
            self.note_progress();
            self.note_delivery(&env);
            return Ok(env);
        }
        self.check_pending_for_mismatch(src, tag);
        let start = Wall::now();
        self.publish_blocked(src, tag, start);
        let outcome = loop {
            let wait = match deadline {
                Some(limit) => {
                    let elapsed = start.elapsed();
                    if elapsed >= limit {
                        break Err(self.deadline_error(src, tag, elapsed));
                    }
                    POLL_TICK.min(limit - elapsed)
                }
                None => POLL_TICK,
            };
            match self.receiver.recv_timeout(wait) {
                Ok(env) => {
                    if env.tag == tag && (src == ANY_SOURCE || env.src == src) {
                        self.note_progress();
                        self.note_delivery(&env);
                        break Ok(env);
                    }
                    self.check_envelope_for_mismatch(&env, src, tag);
                    self.pending.borrow_mut().push_back(env);
                    self.update_pending_snapshot();
                }
                Err(RecvTimeoutError::Timeout) => self.check_abort(),
                Err(RecvTimeoutError::Disconnected) => {
                    panic!(
                        "recv: all peer ranks disconnected while rank {} waited for tag {tag}",
                        self.rank
                    );
                }
            }
        };
        if let Some(monitor) = &self.monitor {
            monitor.clear_blocked(self.slot);
        }
        outcome
    }

    /// Matching engine under the deterministic scheduler. The rank
    /// holds the schedule token while it runs; the only blocking point
    /// is [`Sched::block_recv`], which hands the token to a
    /// policy-chosen peer. `ANY_SOURCE` matches among multiple ready
    /// senders become explicit [`Sched::choose_match`] decisions, and
    /// deadlines resolve on the *virtual* clock at quiescence — no
    /// wall-clock polling anywhere.
    fn match_envelope_sched(
        &self,
        sched: &Arc<Sched>,
        src: usize,
        tag: Tag,
        deadline: Option<Duration>,
    ) -> crate::Result<Envelope> {
        let deadline_nanos =
            deadline.map(|d| sched.vclock_nanos().saturating_add(d.as_nanos() as u64));
        loop {
            self.drain_channel();
            if let Some(env) = self.take_pending_sched(sched, src, tag) {
                self.note_delivery(&env);
                return Ok(env);
            }
            self.check_pending_for_mismatch(src, tag);
            let info = WaitInfo {
                comm_rank: self.rank,
                comm_size: self.size(),
                src,
                tag,
                deadline_nanos,
                pending: self.pending_snapshot(),
            };
            match sched.block_recv(self.slot, info) {
                Wake::Mail => continue,
                Wake::Deadline => {
                    return Err(self.deadline_error(src, tag, deadline.unwrap_or_default()))
                }
                Wake::Abort(msg) => panic!("{msg}"),
            }
        }
    }

    /// Matching engine behind the multi-peer select. A one-element set
    /// degenerates to the specific-source engine so it keeps that
    /// path's collective-order verification; larger sets match
    /// whichever listed peer has traffic queued (FIFO within a pair,
    /// policy-chosen across pairs under the scheduler — a recorded,
    /// replayable decision just like `ANY_SOURCE`).
    fn match_any_of_deadline(
        &self,
        sources: &[usize],
        tag: Tag,
        deadline: Option<Duration>,
    ) -> crate::Result<Envelope> {
        assert!(
            !sources.is_empty(),
            "recv_any_of: empty source set on rank {}",
            self.rank
        );
        if let [only] = sources {
            return self.match_envelope_deadline(*only, tag, deadline);
        }
        for src in sources {
            assert!(
                *src < self.size(),
                "recv_any_of: rank {src} out of range (size {})",
                self.size()
            );
        }
        if let Some(sched) = self.sched.clone() {
            return self.match_any_of_sched(&sched, sources, tag, deadline);
        }
        if let Some(env) = self.take_pending_any_of(sources, tag) {
            self.note_progress();
            self.note_delivery(&env);
            return Ok(env);
        }
        let start = Wall::now();
        self.publish_blocked(ANY_SOURCE, tag, start);
        let outcome = loop {
            let wait = match deadline {
                Some(limit) => {
                    let elapsed = start.elapsed();
                    if elapsed >= limit {
                        break Err(self.deadline_error(ANY_SOURCE, tag, elapsed));
                    }
                    POLL_TICK.min(limit - elapsed)
                }
                None => POLL_TICK,
            };
            match self.receiver.recv_timeout(wait) {
                Ok(env) => {
                    if env.tag == tag && sources.contains(&env.src) {
                        self.note_progress();
                        self.note_delivery(&env);
                        break Ok(env);
                    }
                    self.pending.borrow_mut().push_back(env);
                    self.update_pending_snapshot();
                }
                Err(RecvTimeoutError::Timeout) => self.check_abort(),
                Err(RecvTimeoutError::Disconnected) => {
                    panic!(
                        "recv_any_of: all peer ranks disconnected while rank {} waited for tag {tag}",
                        self.rank
                    );
                }
            }
        };
        if let Some(monitor) = &self.monitor {
            monitor.clear_blocked(self.slot);
        }
        outcome
    }

    /// Multi-peer select under the deterministic scheduler: blocks as
    /// an `ANY_SOURCE` wait (any mail wakes it; non-matching mail just
    /// re-blocks) and resolves set matches through
    /// [`Sched::choose_match`] so record and replay stay aligned.
    fn match_any_of_sched(
        &self,
        sched: &Arc<Sched>,
        sources: &[usize],
        tag: Tag,
        deadline: Option<Duration>,
    ) -> crate::Result<Envelope> {
        let deadline_nanos =
            deadline.map(|d| sched.vclock_nanos().saturating_add(d.as_nanos() as u64));
        loop {
            self.drain_channel();
            let candidates: Vec<usize> = {
                let pending = self.pending.borrow();
                let mut distinct = Vec::new();
                for e in pending.iter() {
                    if e.tag == tag && sources.contains(&e.src) && !distinct.contains(&e.src) {
                        distinct.push(e.src);
                    }
                }
                distinct
            };
            if !candidates.is_empty() {
                let chosen = sched.choose_match(self.slot, &candidates, tag);
                if let Some(env) = self.take_pending(chosen, tag) {
                    self.note_delivery(&env);
                    return Ok(env);
                }
            }
            let info = WaitInfo {
                comm_rank: self.rank,
                comm_size: self.size(),
                src: ANY_SOURCE,
                tag,
                deadline_nanos,
                pending: self.pending_snapshot(),
            };
            match sched.block_recv(self.slot, info) {
                Wake::Mail => continue,
                Wake::Deadline => {
                    return Err(self.deadline_error(ANY_SOURCE, tag, deadline.unwrap_or_default()))
                }
                Wake::Abort(msg) => panic!("{msg}"),
            }
        }
    }

    /// FIFO-across-the-queue match against a source set (wall-clock
    /// path; the scheduler path makes the cross-pair choice explicit).
    fn take_pending_any_of(&self, sources: &[usize], tag: Tag) -> Option<Envelope> {
        let mut pending = self.pending.borrow_mut();
        let idx = pending
            .iter()
            .position(|e| e.tag == tag && sources.contains(&e.src))?;
        pending.remove(idx)
    }

    /// Pending-queue match under the scheduler: a specific-source
    /// receive is FIFO as usual; an `ANY_SOURCE` receive that could
    /// match several distinct senders asks the policy to pick one.
    fn take_pending_sched(&self, sched: &Sched, src: usize, tag: Tag) -> Option<Envelope> {
        if src != ANY_SOURCE {
            return self.take_pending(src, tag);
        }
        let candidates: Vec<usize> = {
            let pending = self.pending.borrow();
            let mut distinct = Vec::new();
            for e in pending.iter() {
                if e.tag == tag && !distinct.contains(&e.src) {
                    distinct.push(e.src);
                }
            }
            distinct
        };
        if candidates.is_empty() {
            return None;
        }
        // Always a recorded decision — even with one candidate — so
        // replayed traces align event-for-event with the original run.
        let chosen = sched.choose_match(self.slot, &candidates, tag);
        self.take_pending(chosen, tag)
    }

    fn take_pending(&self, src: usize, tag: Tag) -> Option<Envelope> {
        let mut pending = self.pending.borrow_mut();
        let idx = pending
            .iter()
            .position(|e| e.tag == tag && (src == ANY_SOURCE || e.src == src))?;
        pending.remove(idx)
    }

    /// Collective-order verification against the pending queue: if this
    /// rank waits for a collective message from a *specific* peer and that
    /// peer has already sent traffic for a *different* collective, the
    /// program violated the all-ranks-same-order rule. Sound because every
    /// collective's sends are exactly consumed by its receives and
    /// per-pair delivery is FIFO, so a leftover collective envelope from
    /// the awaited peer can only mean divergent collective order.
    fn check_pending_for_mismatch(&self, src: usize, tag: Tag) {
        if src == ANY_SOURCE {
            return;
        }
        let Some(mine) = tag.collective_parts() else {
            return;
        };
        let theirs = self.pending.borrow().iter().find_map(|e| {
            if e.src == src && e.tag != tag {
                e.tag.collective_parts()
            } else {
                None
            }
        });
        if let Some(theirs) = theirs {
            self.collective_mismatch(mine, src, theirs);
        }
    }

    /// Same check for a freshly received non-matching envelope.
    fn check_envelope_for_mismatch(&self, env: &Envelope, src: usize, tag: Tag) {
        if src == ANY_SOURCE || env.src != src {
            return;
        }
        let (Some(mine), Some(theirs)) = (tag.collective_parts(), env.tag.collective_parts())
        else {
            return;
        };
        self.collective_mismatch(mine, src, theirs);
    }

    fn collective_mismatch(
        &self,
        mine: (CollectiveKind, u64),
        src: usize,
        theirs: (CollectiveKind, u64),
    ) -> ! {
        panic!(
            "minimpi: collective mismatch on communicator of size {}: rank {} in {:?}@{}, \
             rank {src} in {:?}@{} — every rank must issue collectives in the same order",
            self.size(),
            self.rank,
            mine.0,
            mine.1,
            theirs.0,
            theirs.1,
        );
    }

    fn note_progress(&self) {
        if let Some(monitor) = &self.monitor {
            monitor.note_progress(self.slot);
        }
    }

    /// Sanitizer delivery hook: merge the sender's piggybacked clock
    /// into this rank's (the happens-before edge every safety argument
    /// leans on) and clear the in-flight registration. A no-op when
    /// the envelope is unstamped or the sanitizer is off.
    fn note_delivery(&self, env: &Envelope) {
        if let Some(stamp) = &env.stamp {
            sanitizer::on_recv(stamp);
        }
    }

    fn publish_blocked(&self, src: usize, tag: Tag, since: Wall) {
        let Some(monitor) = &self.monitor else {
            return;
        };
        let src_slot = if src == ANY_SOURCE {
            None
        } else {
            self.peer_slots.get(src).copied()
        };
        monitor.publish_blocked(
            self.slot,
            BlockedInfo {
                comm_rank: self.rank,
                comm_size: self.size(),
                src,
                src_slot,
                tag,
                since,
                pending: self.pending_snapshot(),
            },
        );
    }

    fn update_pending_snapshot(&self) {
        if let Some(monitor) = &self.monitor {
            monitor.update_pending(self.slot, self.pending_snapshot());
        }
    }

    fn pending_snapshot(&self) -> Vec<(usize, Tag)> {
        self.pending
            .borrow()
            .iter()
            .map(|e| (e.src, e.tag))
            .collect()
    }

    /// Panic with the watchdog's deadlock report if it fired.
    fn check_abort(&self) {
        if let Some(monitor) = &self.monitor {
            if monitor.aborted() {
                panic!("{}", monitor.report());
            }
        }
    }

    fn deadline_error(&self, src: usize, tag: Tag, waited: Duration) -> crate::Error {
        let snapshot = self.pending_snapshot();
        let mut pending = String::from("[");
        for (i, (from, tag)) in snapshot.iter().take(8).enumerate() {
            if i > 0 {
                pending.push_str(", ");
            }
            pending.push_str(&format!("from {from}: {tag}"));
        }
        if snapshot.len() > 8 {
            pending.push_str(", ...");
        }
        pending.push(']');
        crate::Error::DeadlineExceeded {
            src,
            tag: tag.to_string(),
            waited,
            pending,
        }
    }

    /// Collectively split this communicator into disjoint subgroups.
    ///
    /// Ranks passing the same `color` end up in the same new communicator;
    /// within a group, new ranks are ordered by `(key, old rank)`. Every
    /// rank of `self` must call `split`. Analogous to `MPI_Comm_split`.
    pub fn split(&self, color: u32, key: u32) -> Comm {
        let (tx, rx) = unbounded::<Envelope>();
        let tag = self.collective_tag(CollectiveKind::Split);
        let mine = SplitInfo {
            color,
            key,
            old_rank: self.rank,
            slot: self.slot,
            sender: tx,
        };
        let infos: Vec<SplitInfo> = crate::collectives::allgather_tagged(self, tag, mine);
        let mut members: Vec<&SplitInfo> = infos.iter().filter(|i| i.color == color).collect();
        members.sort_by_key(|i| (i.key, i.old_rank));
        let new_rank = members
            .iter()
            .position(|i| i.old_rank == self.rank)
            .unwrap_or_else(|| panic!("split: own rank missing from its color group"));
        let senders: Vec<Sender<Envelope>> = members.iter().map(|i| i.sender.clone()).collect();
        let peer_slots: Arc<Vec<usize>> = Arc::new(members.iter().map(|i| i.slot).collect());
        let sub = Comm::new(new_rank, Arc::new(senders), rx).with_runtime(
            self.slot,
            peer_slots,
            self.monitor.clone(),
            self.faults.clone(),
            self.sched.clone(),
        );
        sub.attach_probe(self.probe());
        sub
    }

    /// Collectively duplicate this communicator (cf. `MPI_Comm_dup`).
    ///
    /// The duplicate has an independent tag/epoch space, so libraries can
    /// communicate on it without colliding with application messages.
    pub fn dup(&self) -> Comm {
        self.split(0, self.rank as u32)
    }
}

#[derive(Clone)]
struct SplitInfo {
    color: u32,
    key: u32,
    old_rank: usize,
    slot: usize,
    sender: Sender<Envelope>,
}

/// Estimated deep size of a payload about to ship. The transport is
/// type-erased, so deep sizing probes the concrete buffer types the
/// workspace actually moves (element vectors, rsag segments, strings);
/// anything else falls back to its shallow `size_of`. Only evaluated
/// when a probe is attached.
fn payload_bytes<T: Send + 'static>(value: &T) -> usize {
    fn vec_bytes<E>(v: &[E]) -> usize {
        std::mem::size_of::<Vec<E>>() + std::mem::size_of_val(v)
    }
    let any: &dyn Any = value;
    macro_rules! try_vec {
        ($($elem:ty),* $(,)?) => {
            $(
                if let Some(v) = any.downcast_ref::<Vec<$elem>>() {
                    return vec_bytes(v);
                }
                if let Some((_, v)) = any.downcast_ref::<(usize, Vec<$elem>)>() {
                    return std::mem::size_of::<usize>() + vec_bytes(v);
                }
            )*
        };
    }
    try_vec!(f64, f32, u64, i64, u32, i32, u8, usize);
    if let Some(s) = any.downcast_ref::<String>() {
        return std::mem::size_of::<String>() + s.len();
    }
    std::mem::size_of::<T>()
}

fn downcast_payload<T: 'static>(payload: Box<dyn Any + Send>, src: usize, tag: Tag) -> T {
    match payload.downcast::<T>() {
        Ok(v) => *v,
        Err(_) => panic!(
            "recv: message from rank {src} with tag {tag} is not a {}",
            std::any::type_name::<T>()
        ),
    }
}

#[cfg(test)]
mod tests {
    use crate::World;

    #[test]
    fn ping_pong() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0f64, 2.0, 3.0]);
                let back: Vec<f64> = comm.recv(1, 8);
                assert_eq!(back, vec![2.0, 4.0, 6.0]);
            } else {
                let v: Vec<f64> = comm.recv(0, 7);
                comm.send(0, 8, v.into_iter().map(|x| x * 2.0).collect::<Vec<_>>());
            }
        });
    }

    #[test]
    fn tag_matching_is_selective() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for 1 first.
                comm.send(1, 2, 222u32);
                comm.send(1, 1, 111u32);
            } else {
                let one: u32 = comm.recv(0, 1);
                let two: u32 = comm.recv(0, 2);
                assert_eq!((one, two), (111, 222));
            }
        });
    }

    #[test]
    fn per_source_fifo_order() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..100u32 {
                    comm.send(1, 5, i);
                }
            } else {
                for i in 0..100u32 {
                    let got: u32 = comm.recv(0, 5);
                    assert_eq!(got, i);
                }
            }
        });
    }

    #[test]
    fn recv_any_source() {
        World::run(4, |comm| {
            if comm.rank() == 0 {
                let mut seen = vec![false; 4];
                for _ in 0..3 {
                    let (src, v): (usize, usize) = comm.recv_any(9);
                    assert_eq!(v, src * 10);
                    seen[src] = true;
                }
                assert_eq!(seen, vec![false, true, true, true]);
            } else {
                comm.send(0, 9, comm.rank() * 10);
            }
        });
    }

    #[test]
    fn sendrecv_ring_shift() {
        World::run(5, |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            let got: usize = comm.sendrecv(right, left, 3, comm.rank());
            assert_eq!(got, left);
        });
    }

    #[test]
    fn split_into_even_odd_groups() {
        World::run(6, |comm| {
            let color = (comm.rank() % 2) as u32;
            let sub = comm.split(color, comm.rank() as u32);
            assert_eq!(sub.size(), 3);
            assert_eq!(sub.rank(), comm.rank() / 2);
            // The subgroup communicates independently of the parent.
            let total = sub.allreduce_scalar(comm.rank(), |a, b| a + b);
            let expect = if color == 0 { 6 } else { 1 + 3 + 5 };
            assert_eq!(total, expect);
        });
    }

    #[test]
    fn split_with_key_reorders() {
        World::run(4, |comm| {
            // Reverse order via key.
            let key = (comm.size() - comm.rank()) as u32;
            let sub = comm.split(0, key);
            assert_eq!(sub.rank(), comm.size() - 1 - comm.rank());
        });
    }

    #[test]
    fn dup_is_independent() {
        World::run(3, |comm| {
            let dup = comm.dup();
            assert_eq!(dup.rank(), comm.rank());
            assert_eq!(dup.size(), comm.size());
            // Same tag on both communicators does not cross over.
            if comm.rank() == 0 {
                comm.send(1, 4, 1u8);
                dup.send(1, 4, 2u8);
            } else if comm.rank() == 1 {
                let b: u8 = dup.recv(0, 4);
                let a: u8 = comm.recv(0, 4);
                assert_eq!((a, b), (1, 2));
            }
        });
    }

    #[test]
    fn iprobe_sees_pending_message() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 11, 42u64);
                comm.barrier();
            } else {
                comm.barrier();
                assert!(comm.iprobe(0, 11));
                assert!(!comm.iprobe(0, 12));
                let v: u64 = comm.recv(0, 11);
                assert_eq!(v, 42);
            }
        });
    }

    #[test]
    fn probe_counts_collectives_and_p2p() {
        World::run(4, |comm| {
            let p = probe::enabled();
            comm.attach_probe(p.clone());
            comm.barrier();
            let _ = comm.allreduce_vec_rsag(vec![comm.rank() as u64; 8], |a, b| a + b);
            if comm.rank() == 0 {
                comm.send(1, 5, vec![1.0f64; 16]);
            } else if comm.rank() == 1 {
                let _: Vec<f64> = comm.recv(0, 5);
            }
            let snap = p.snapshot();
            let get = |n: &str| snap.counters.iter().find(|c| c.name == n);
            assert_eq!(get("minimpi/barrier").unwrap().calls, 1);
            assert_eq!(get("minimpi/reduce_scatter").unwrap().calls, 1);
            assert_eq!(get("minimpi/allgather").unwrap().calls, 1);
            assert!(get("minimpi/barrier").unwrap().messages > 0);
            if comm.rank() == 0 {
                let c = get("minimpi/p2p").unwrap();
                assert_eq!((c.calls, c.messages), (1, 1));
                assert!(c.bytes >= 16 * 8, "deep-sized payload: {} bytes", c.bytes);
            } else {
                assert!(get("minimpi/p2p").is_none(), "recv side counts nothing");
            }
            // Derived communicators inherit the probe.
            let sub = comm.split((comm.rank() % 2) as u32, 0);
            assert!(sub.probe().is_enabled());
            sub.barrier();
            assert_eq!(
                get("minimpi/barrier").unwrap().calls,
                1,
                "snapshot is a copy"
            );
            assert!(p
                .snapshot()
                .counters
                .iter()
                .any(|c| c.name == "minimpi/split"));
        });
    }

    #[test]
    fn unprobed_comm_records_nothing() {
        World::run(2, |comm| {
            assert!(!comm.probe().is_enabled());
            comm.barrier();
            assert_eq!(comm.probe().snapshot(), probe::Snapshot::default());
        });
    }

    #[test]
    #[should_panic(expected = "is not a")]
    fn type_mismatch_panics() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 1.5f64);
            } else {
                let _: u32 = comm.recv(0, 1);
            }
        });
    }

    #[test]
    #[should_panic(expected = "collective mismatch")]
    fn collective_epoch_mismatch_detected() {
        use crate::envelope::{CollectiveKind, Tag};
        World::run(2, |comm| {
            if comm.rank() == 0 {
                // Simulate a peer one collective ahead: same kind, epoch 7.
                comm.send_tagged(1, Tag::collective(CollectiveKind::Bcast, 7), 1u8);
            } else {
                let _: (usize, u8) = comm.recv_tagged(0, Tag::collective(CollectiveKind::Bcast, 9));
            }
        });
    }

    #[test]
    fn recv_any_of_matches_only_listed_sources() {
        World::run(4, |comm| {
            if comm.rank() == 0 {
                // Rank 3 also sends on the same tag; the select over
                // {1, 2} must leave that message queued untouched.
                let mut seen = vec![];
                for _ in 0..2 {
                    let (src, v): (usize, u32) = comm.recv_any_of(&[1, 2], 21);
                    assert_eq!(v as usize, src * 100);
                    seen.push(src);
                }
                seen.sort_unstable();
                assert_eq!(seen, vec![1, 2]);
                let (src, v): (usize, u32) = comm.recv_any_of(&[3], 21);
                assert_eq!((src, v), (3, 300));
            } else {
                comm.send(0, 21, (comm.rank() * 100) as u32);
            }
        });
    }

    #[test]
    fn recv_any_of_deadline_times_out_when_all_silent() {
        use std::time::Duration;
        World::run(3, |comm| {
            if comm.rank() == 0 {
                let got: crate::Result<(usize, u8)> =
                    comm.recv_any_of_deadline(&[1, 2], 33, Duration::from_millis(40));
                match got {
                    Err(crate::Error::DeadlineExceeded { waited, .. }) => {
                        assert!(waited >= Duration::from_millis(40));
                    }
                    other => panic!("expected deadline, got {other:?}"),
                }
            }
            comm.barrier();
        });
    }

    #[test]
    fn recv_any_of_is_deterministic_under_replay() {
        use crate::{SchedPolicy, TraceCell, WorldBuilder};
        let run = |policy: SchedPolicy, cell: &TraceCell| -> Vec<usize> {
            let order = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
            let sink = order.clone();
            WorldBuilder::new(4)
                .sched(policy)
                .trace_cell(cell)
                .run(move |comm| {
                    if comm.rank() == 0 {
                        for _ in 0..6 {
                            let (src, _v): (usize, u64) = comm.recv_any_of(&[1, 2, 3], 44);
                            sink.lock().push(src);
                        }
                    } else {
                        for i in 0..2u64 {
                            comm.send(0, 44, comm.rank() as u64 * 10 + i);
                        }
                    }
                });
            let got = order.lock().clone();
            got
        };
        let cell = TraceCell::default();
        let recorded = run(SchedPolicy::Seeded(0xB20C), &cell);
        let trace = cell.take().expect("seeded run records a trace");
        let replay_cell = TraceCell::default();
        let replayed = run(SchedPolicy::Replay(trace), &replay_cell);
        assert_eq!(recorded, replayed, "select order must replay exactly");
    }

    #[test]
    fn split_preserves_world_slots() {
        use std::time::Duration;
        // Faults are keyed by world rank: cutting world link 0->2 must
        // still drop messages on a sub-communicator where those ranks have
        // different local numbering.
        let faults = crate::FaultHandle::new();
        faults.drop_link(0, 2);
        let handle = faults.clone();
        crate::WorldBuilder::new(4)
            .fault_handle(handle)
            .run(|comm| {
                let sub = comm.split((comm.rank() % 2) as u32, 0); // {0,2} and {1,3}
                if comm.rank() == 0 {
                    sub.send(1, 3, 5u8); // world 0 -> world 2: dropped
                } else if comm.rank() == 2 {
                    let got: crate::Result<(usize, u8)> =
                        sub.recv_deadline(0, 3, Duration::from_millis(50));
                    assert!(got.is_err(), "fault rule did not follow the split");
                } else if comm.rank() == 1 {
                    sub.send(1, 3, 6u8); // world 1 -> world 3: delivered
                } else {
                    let (_, got): (usize, u8) = sub
                        .recv_deadline(0, 3, Duration::from_secs(5))
                        .expect("healthy link must deliver");
                    assert_eq!(got, 6);
                }
            });
        assert_eq!(faults.dropped(), 1);
    }
}
