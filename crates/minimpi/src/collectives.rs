//! Collective operations built on point-to-point messaging.
//!
//! Algorithms follow the classic MPICH implementations where practical:
//! dissemination barrier, binomial-tree broadcast and reduce, ring
//! allgather, pairwise all-to-all, and a linear-chain scan. Because the
//! transport is eager (sends never block), the exchanges cannot deadlock.
//!
//! Every rank of a communicator must call each collective, in the same
//! order — the standard MPI contract. Violations deadlock, as they would
//! under MPI.

use std::sync::Arc;

use crate::comm::Comm;
use crate::envelope::{CollectiveKind, Tag};

impl Comm {
    /// Block until every rank in the communicator has entered the barrier.
    /// Dissemination algorithm: ⌈log₂ p⌉ rounds of pairwise signals.
    pub fn barrier(&self) {
        let p = self.size();
        let tag = self.collective_tag(CollectiveKind::Barrier);
        if p == 1 {
            return;
        }
        let mut dist = 1;
        while dist < p {
            let to = (self.rank() + dist) % p;
            let from = (self.rank() + p - dist) % p;
            self.send_tagged(to, tag, dist);
            let d: usize = self.recv_tagged(from, tag).1;
            debug_assert_eq!(d, dist);
            dist <<= 1;
        }
    }

    /// Binomial-tree broadcast from `root`.
    ///
    /// The root passes `Some(value)`; every other rank passes `None` and
    /// receives the root's value. All ranks return the broadcast value.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        let p = self.size();
        assert!(root < p, "bcast: root {root} out of range for size {p}");
        if self.rank() == root {
            assert!(value.is_some(), "bcast: root must supply Some(value)");
        } else {
            assert!(value.is_none(), "bcast: non-root rank passed Some(value)");
        }
        let tag = self.collective_tag(CollectiveKind::Bcast);
        let relative = (self.rank() + p - root) % p;

        // Receive from the parent (all ranks except the root).
        let mut value = value;
        let mut mask = 1usize;
        while mask < p {
            if relative & mask != 0 {
                let parent = ((relative - mask) + root) % p;
                value = Some(self.recv_tagged::<T>(parent, tag).1);
                break;
            }
            mask <<= 1;
        }
        let Some(value) = value else {
            panic!("bcast: internal tree error")
        };

        // Forward to children, highest-order bit first.
        let mut mask = mask >> 1;
        while mask > 0 {
            if relative + mask < p {
                let child = (relative + mask + root) % p;
                self.send_tagged(child, tag, value.clone());
            }
            mask >>= 1;
        }
        value
    }

    /// Zero-copy broadcast of a shared payload from `root`.
    ///
    /// Semantically identical to [`Comm::bcast`], but the value travels
    /// as an [`Arc`]: each hop of the binomial tree clones a pointer
    /// (one atomic increment), never the payload, so broadcasting a
    /// multi-megabyte deck or lookup table to `p` ranks costs one
    /// allocation total instead of `p` deep copies. Every rank's return
    /// value shares the root's buffer; a rank that needs private
    /// mutable access uses `Arc::make_mut`, paying for the copy only
    /// if and when it actually writes.
    pub fn bcast_arc<T: Send + Sync + 'static>(
        &self,
        root: usize,
        value: Option<Arc<T>>,
    ) -> Arc<T> {
        self.bcast(root, value)
    }

    /// Binomial-tree reduction to `root` with a combining operator.
    ///
    /// Returns `Some(total)` on the root, `None` elsewhere. `op` must be
    /// associative and commutative (the MPI built-in-op contract).
    pub fn reduce<T, F>(&self, root: usize, value: T, op: F) -> Option<T>
    where
        T: Send + 'static,
        F: Fn(T, T) -> T,
    {
        let p = self.size();
        assert!(root < p, "reduce: root {root} out of range for size {p}");
        let tag = self.collective_tag(CollectiveKind::Reduce);
        let relative = (self.rank() + p - root) % p;
        let mut acc = value;
        let mut mask = 1usize;
        while mask < p {
            if relative & mask == 0 {
                let child_rel = relative | mask;
                if child_rel < p {
                    let child = (child_rel + root) % p;
                    let theirs: T = self.recv_tagged(child, tag).1;
                    acc = op(acc, theirs);
                }
            } else {
                let parent = ((relative - mask) + root) % p;
                self.send_tagged(parent, tag, acc);
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// All-reduce: reduction whose result is returned on every rank.
    /// Implemented as a binomial reduce to rank 0 followed by a broadcast,
    /// the pattern the paper's BSP analyses exhibit.
    pub fn allreduce<T, F>(&self, value: T, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let reduced = self.reduce(0, value, op);
        self.bcast(0, reduced)
    }

    /// Convenience alias of [`Comm::allreduce`] reading better at call
    /// sites that reduce a single scalar.
    pub fn allreduce_scalar<T, F>(&self, value: T, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        self.allreduce(value, op)
    }

    /// Element-wise all-reduce over equal-length vectors.
    ///
    /// # Panics
    /// Panics if ranks contribute vectors of different lengths.
    pub fn allreduce_vec<T, F>(&self, value: Vec<T>, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        self.allreduce(value, |a, b| {
            assert_eq!(a.len(), b.len(), "allreduce_vec: length mismatch");
            a.iter().zip(b.iter()).map(|(x, y)| op(x, y)).collect()
        })
    }

    /// Element-wise all-reduce that picks the wire algorithm from the
    /// measured crossover table: binomial tree ([`Comm::allreduce_vec`])
    /// below [`rsag_crossover_bytes`], reduce-scatter/allgather
    /// ([`Comm::allreduce_vec_rsag`]) at or above it.
    ///
    /// This is the default entry point for per-step vector reductions
    /// (histogram bins, autocorrelation lags, bridge aggregates): the
    /// caller states *what* to reduce and the crossover table — filled
    /// in by `bench --bin perfgate -- --calibrate`, never guessed —
    /// decides *how*. Every rank computes the same decision from the
    /// communicator size and `len × size_of::<T>()`, so the choice is
    /// collectively consistent whenever the length contract holds
    /// (which [`Comm::allreduce_vec_rsag`] now validates up front).
    ///
    /// Results are element-wise identical to both underlying paths for
    /// exact ops (integer sums, min/max); floating-point sums follow
    /// the combination order of whichever path was selected.
    pub fn allreduce_vec_auto<T, F>(&self, value: Vec<T>, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let bytes = std::mem::size_of_val(value.as_slice());
        if bytes >= rsag_crossover_bytes(self.size()) {
            self.allreduce_vec_rsag(value, op)
        } else {
            self.allreduce_vec(value, op)
        }
    }

    /// Large-message element-wise all-reduce: recursive-halving
    /// reduce-scatter followed by recursive-doubling allgather
    /// (Rabenseifner's algorithm, the MPICH large-message path).
    ///
    /// [`Comm::allreduce_vec`] moves the *entire* vector up a binomial
    /// tree and back down — every level transfers `n` elements, for
    /// `O(n log p)` total traffic through the root. Here each rank
    /// instead reduces one `n/p`-sized segment (halving the exchanged
    /// volume every round) and then the segments are allgathered, for
    /// `O(n)` volume per rank — the right trade for the bin- and
    /// lag-vector reductions the in situ analyses perform every step.
    ///
    /// Non-power-of-two sizes are handled with the standard fold-in:
    /// the ranks above the largest power of two send their vectors to a
    /// partner first and receive the finished result last.
    ///
    /// `op` must be associative and commutative (the MPI built-in-op
    /// contract); the combination *order* differs from
    /// [`Comm::allreduce_vec`], so floating-point sums may differ by
    /// rounding between the two — exact ops (integer sums, min/max)
    /// agree bitwise.
    ///
    /// # Panics
    /// Panics — on every rank, with the full per-rank length table —
    /// if ranks contribute vectors of different lengths. The check runs
    /// *before* any segment exchange: a mismatch first noticed deep in
    /// the recursive halving would leave partners waiting on segments
    /// that can never arrive, turning a length bug into a deadlock.
    pub fn allreduce_vec_rsag<T, F>(&self, value: Vec<T>, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let p = self.size();
        let n = value.len();
        // Two tag kinds so a fast partner's allgather traffic can never
        // be mistaken for reduce-scatter traffic from the same pair.
        // Both phases count as entered before the single-rank fast
        // path, keeping invocation counters size-invariant.
        let rs_tag = self.collective_tag(CollectiveKind::ReduceScatter);
        let ag_tag = self.collective_tag(CollectiveKind::Allgather);
        if p == 1 {
            return value;
        }
        let me = self.rank();

        // Fail fast on unequal contributions before any buffer splits:
        // one cheap usize ring gives every rank the full length table
        // for the diagnostic. It reuses `rs_tag`, so per-pair FIFO
        // ordering keeps these envelopes strictly ahead of the data
        // exchange that follows.
        let lens = allgather_tagged(self, rs_tag, n);
        if lens.iter().any(|&l| l != n) {
            let table: Vec<String> = lens
                .iter()
                .enumerate()
                .map(|(r, l)| format!("rank {r}: {l}"))
                .collect();
            panic!(
                "minimpi: allreduce_vec_rsag length mismatch on communicator of size {p}: \
                 every rank must contribute the same number of elements — {}",
                table.join(", ")
            );
        }

        let p2 = 1usize << (usize::BITS - 1 - p.leading_zeros());
        let extra = p - p2;

        // Fold-in: ranks beyond the power-of-two boundary contribute to
        // a partner, then sit out until the result is folded back out.
        if me >= p2 {
            self.send_tagged(me - p2, rs_tag, value);
            let (_, out): (_, Vec<T>) = self.recv_tagged(me - p2, ag_tag);
            return out;
        }
        let mut buf = value;
        if me < extra {
            let theirs: Vec<T> = self.recv_tagged(me + p2, rs_tag).1;
            debug_assert_eq!(theirs.len(), n, "lengths validated up front");
            for (a, b) in buf.iter_mut().zip(theirs.iter()) {
                *a = op(a, b);
            }
        }

        // Recursive halving: each round trades away half of the range
        // still owned and combines the retained half. Splits nest, so
        // after log₂ p₂ rounds rank order equals segment order.
        let mut lo = 0usize;
        let mut hi = n;
        let mut mask = p2 >> 1;
        while mask > 0 {
            let partner = me ^ mask;
            let mid = lo + (hi - lo) / 2;
            if me & mask == 0 {
                let upper = buf.split_off(mid - lo);
                self.send_tagged(partner, rs_tag, upper);
                hi = mid;
            } else {
                let upper = buf.split_off(mid - lo);
                self.send_tagged(partner, rs_tag, buf);
                buf = upper;
                lo = mid;
            }
            let theirs: Vec<T> = self.recv_tagged(partner, rs_tag).1;
            debug_assert_eq!(theirs.len(), buf.len(), "lengths validated up front");
            for (a, b) in buf.iter_mut().zip(theirs.iter()) {
                *a = op(a, b);
            }
            mask >>= 1;
        }

        // Recursive doubling: partners hold adjacent (nested-split)
        // ranges, so every merge is a contiguous concatenation.
        let mut mask = 1usize;
        while mask < p2 {
            let partner = me ^ mask;
            self.send_tagged(partner, ag_tag, (lo, buf.clone()));
            let (their_lo, theirs): (usize, Vec<T>) = self.recv_tagged(partner, ag_tag).1;
            if their_lo < lo {
                let mut merged = theirs;
                merged.append(&mut buf);
                buf = merged;
                lo = their_lo;
            } else {
                buf.extend(theirs);
            }
            mask <<= 1;
        }
        debug_assert_eq!(
            (lo, buf.len()),
            (0, n),
            "allreduce_vec_rsag: lost a segment"
        );

        // Fold-out: deliver the finished vector to the sidelined ranks.
        if me < extra {
            self.send_tagged(me + p2, ag_tag, buf.clone());
        }
        buf
    }

    /// Gather one value from every rank to `root`, ordered by rank.
    /// Returns `Some(values)` on the root, `None` elsewhere.
    pub fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>> {
        let p = self.size();
        assert!(root < p, "gather: root {root} out of range for size {p}");
        let tag = self.collective_tag(CollectiveKind::Gather);
        if self.rank() == root {
            let mut slots: Vec<Option<T>> = (0..p).map(|_| None).collect();
            slots[root] = Some(value);
            for _ in 0..p - 1 {
                let (src, v) = self.recv_tagged::<T>(crate::ANY_SOURCE, tag);
                slots[src] = Some(v);
            }
            Some(
                slots
                    .into_iter()
                    .map(|s| s.unwrap_or_else(|| panic!("gather: hole")))
                    .collect(),
            )
        } else {
            self.send_tagged(root, tag, value);
            None
        }
    }

    /// Ring allgather: every rank contributes one value and receives the
    /// full rank-ordered vector. `p - 1` neighbor exchanges.
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        let tag = self.collective_tag(CollectiveKind::Allgather);
        allgather_ring(self, tag, value)
    }

    /// Scatter a rank-ordered vector from `root`; each rank receives its
    /// element. The root passes `Some(values)` with `values.len() == p`.
    pub fn scatter<T: Send + 'static>(&self, root: usize, values: Option<Vec<T>>) -> T {
        let p = self.size();
        assert!(root < p, "scatter: root {root} out of range for size {p}");
        let tag = self.collective_tag(CollectiveKind::Scatter);
        if self.rank() == root {
            let Some(values) = values else {
                panic!("scatter: root must supply Some(values)")
            };
            assert_eq!(values.len(), p, "scatter: need one value per rank");
            let mut mine = None;
            for (dest, v) in values.into_iter().enumerate() {
                if dest == root {
                    mine = Some(v);
                } else {
                    self.send_tagged(dest, tag, v);
                }
            }
            mine.unwrap_or_else(|| panic!("scatter: root element missing"))
        } else {
            assert!(
                values.is_none(),
                "scatter: non-root rank passed Some(values)"
            );
            self.recv_tagged(root, tag).1
        }
    }

    /// Pairwise all-to-all personalized exchange: `values[d]` goes to rank
    /// `d`; the result's element `s` came from rank `s`.
    pub fn alltoall<T: Send + 'static>(&self, values: Vec<T>) -> Vec<T> {
        let p = self.size();
        assert_eq!(values.len(), p, "alltoall: need one value per rank");
        let tag = self.collective_tag(CollectiveKind::Alltoall);
        let me = self.rank();
        let mut slots: Vec<Option<T>> = (0..p).map(|_| None).collect();
        for (dest, v) in values.into_iter().enumerate() {
            if dest == me {
                slots[me] = Some(v);
            } else {
                self.send_tagged(dest, tag, v);
            }
        }
        for _ in 0..p - 1 {
            let (src, v) = self.recv_tagged::<T>(crate::ANY_SOURCE, tag);
            slots[src] = Some(v);
        }
        slots
            .into_iter()
            .map(|s| s.unwrap_or_else(|| panic!("alltoall: hole")))
            .collect()
    }

    /// Inclusive prefix scan: rank `r` returns
    /// `op(v₀, op(v₁, … op(v_{r-1}, v_r)))`, combined in rank order along a
    /// linear chain.
    pub fn scan<T, F>(&self, value: T, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let p = self.size();
        let tag = self.collective_tag(CollectiveKind::Scan);
        let mine = if self.rank() == 0 {
            value
        } else {
            let prefix: T = self.recv_tagged(self.rank() - 1, tag).1;
            op(prefix, value)
        };
        if self.rank() + 1 < p {
            self.send_tagged(self.rank() + 1, tag, mine.clone());
        }
        mine
    }

    /// Exclusive prefix scan; rank 0 returns `identity`.
    pub fn exscan<T, F>(&self, value: T, identity: T, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let inclusive = self.scan(value.clone(), &op);
        // Shift right by one rank: send inclusive prefix to the next rank.
        let tag = self.collective_tag(CollectiveKind::Scan);
        if self.rank() + 1 < self.size() {
            self.send_tagged(self.rank() + 1, tag, inclusive);
        }
        if self.rank() == 0 {
            identity
        } else {
            self.recv_tagged(self.rank() - 1, tag).1
        }
    }
}

/// Measured tree → reduce-scatter/allgather crossover, in payload
/// bytes, keyed by communicator-size bracket: the first entry whose
/// bound is ≥ the communicator size applies. `usize::MAX` records that
/// the binomial tree won at every calibrated size for that bracket.
///
/// On the in-process transport a tree hop *moves* the whole vector
/// (one pointer through a channel) while reduce-scatter/allgather pays
/// real segment splits, clones, and reassembly — so the crossover sits
/// far higher than on a network fabric, and on small hosts the tree
/// wins outright. These numbers are measured, never guessed: the
/// hotpath suite (`cargo run --release -p bench --bin hotpath`) sweeps
/// ranks × payload sizes and records the per-point timings and the
/// implied crossover in `BENCH_hotpath.json` — update this table from
/// that sweep's `"crossover"` entries whenever the transport changes.
pub const RSAG_CROSSOVER: &[(usize, usize)] = &[
    (2, usize::MAX),
    (4, usize::MAX),
    (8, usize::MAX),
    (usize::MAX, usize::MAX),
];

/// Minimum payload size in bytes at which [`Comm::allreduce_vec_rsag`]
/// beats [`Comm::allreduce_vec`] on a communicator of `ranks` ranks,
/// per the calibrated [`RSAG_CROSSOVER`] table.
pub fn rsag_crossover_bytes(ranks: usize) -> usize {
    for &(max_ranks, bytes) in RSAG_CROSSOVER {
        if ranks <= max_ranks {
            return bytes;
        }
    }
    usize::MAX
}

/// Ring allgather with an explicit tag; shared with `Comm::split`, which
/// must allgather before the new communicator exists.
pub(crate) fn allgather_tagged<T: Clone + Send + 'static>(
    comm: &Comm,
    tag: Tag,
    value: T,
) -> Vec<T> {
    allgather_ring(comm, tag, value)
}

fn allgather_ring<T: Clone + Send + 'static>(comm: &Comm, tag: Tag, value: T) -> Vec<T> {
    let p = comm.size();
    let me = comm.rank();
    let mut slots: Vec<Option<T>> = (0..p).map(|_| None).collect();
    slots[me] = Some(value);
    if p == 1 {
        return slots.into_iter().map(Option::unwrap).collect();
    }
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    // Step k forwards the block that originated k ranks to the left.
    let mut forward: T = slots[me]
        .clone()
        .unwrap_or_else(|| panic!("allgather: own slot missing"));
    for step in 0..p - 1 {
        comm.send_tagged(right, tag, forward);
        let incoming: T = comm.recv_tagged(left, tag).1;
        let origin = (me + p - 1 - step) % p;
        slots[origin] = Some(incoming.clone());
        forward = incoming;
    }
    slots
        .into_iter()
        .map(|s| s.unwrap_or_else(|| panic!("allgather: hole")))
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::World;

    fn sizes() -> Vec<usize> {
        vec![1, 2, 3, 4, 5, 8, 13]
    }

    #[test]
    fn bcast_from_every_root() {
        for p in sizes() {
            for root in 0..p {
                World::run(p, move |comm| {
                    let v = if comm.rank() == root {
                        Some(vec![root as u64, 99])
                    } else {
                        None
                    };
                    let got = comm.bcast(root, v);
                    assert_eq!(got, vec![root as u64, 99]);
                });
            }
        }
    }

    #[test]
    fn reduce_sum_to_every_root() {
        for p in sizes() {
            for root in 0..p {
                World::run(p, move |comm| {
                    let got = comm.reduce(root, comm.rank() as u64, |a, b| a + b);
                    if comm.rank() == root {
                        let expect = (p as u64 * (p as u64 - 1)) / 2;
                        assert_eq!(got, Some(expect));
                    } else {
                        assert_eq!(got, None);
                    }
                });
            }
        }
    }

    #[test]
    fn allreduce_min_max() {
        for p in sizes() {
            World::run(p, move |comm| {
                let lo = comm.allreduce_scalar(comm.rank() as i64, i64::min);
                let hi = comm.allreduce_scalar(comm.rank() as i64, i64::max);
                assert_eq!(lo, 0);
                assert_eq!(hi, p as i64 - 1);
            });
        }
    }

    #[test]
    fn allreduce_vec_elementwise() {
        World::run(4, |comm| {
            let v = vec![comm.rank() as f64, 1.0];
            let out = comm.allreduce_vec(v, |a, b| a + b);
            assert_eq!(out, vec![6.0, 4.0]);
        });
    }

    #[test]
    fn bcast_arc_shares_one_allocation() {
        use std::sync::Arc;
        World::run(6, |comm| {
            let v = if comm.rank() == 0 {
                Some(Arc::new(vec![1u64, 2, 3]))
            } else {
                None
            };
            let got = comm.bcast_arc(0, v);
            assert_eq!(got.as_ref(), &vec![1u64, 2, 3]);
            // All ranks alias the root's buffer (in-process transport).
            let expect = comm.allreduce_scalar(Arc::as_ptr(&got) as usize, |a, b| {
                assert_eq!(a, b, "ranks hold different allocations");
                a
            });
            assert_eq!(expect, Arc::as_ptr(&got) as usize);
        });
    }

    #[test]
    fn rsag_matches_tree_allreduce_on_exact_ops() {
        for p in sizes() {
            World::run(p, move |comm| {
                // Length not divisible by p, and both odd/even lengths.
                for n in [0usize, 1, 5, 17, 64] {
                    let v: Vec<u64> = (0..n as u64).map(|i| i * 7 + comm.rank() as u64).collect();
                    let tree = comm.allreduce_vec(v.clone(), |a, b| a + b);
                    let rsag = comm.allreduce_vec_rsag(v, |a, b| a + b);
                    assert_eq!(tree, rsag, "p={p} n={n}");
                }
            });
        }
    }

    #[test]
    fn rsag_min_max() {
        for p in sizes() {
            World::run(p, move |comm| {
                let v: Vec<i64> = (0..13).map(|i| (comm.rank() as i64 + 3) * i).collect();
                let lo = comm.allreduce_vec_rsag(v.clone(), |a, b| *a.min(b));
                let hi = comm.allreduce_vec_rsag(v, |a, b| *a.max(b));
                for i in 0..13i64 {
                    assert_eq!(lo[i as usize], 3 * i);
                    assert_eq!(hi[i as usize], (p as i64 + 2) * i);
                }
            });
        }
    }

    #[test]
    fn auto_matches_tree_and_rsag_on_exact_ops() {
        for p in sizes() {
            World::run(p, move |comm| {
                for n in [0usize, 1, 5, 17, 64, 257] {
                    let v: Vec<u64> = (0..n as u64).map(|i| i * 3 + comm.rank() as u64).collect();
                    let tree = comm.allreduce_vec(v.clone(), |a, b| a + b);
                    let rsag = comm.allreduce_vec_rsag(v.clone(), |a, b| a + b);
                    let auto = comm.allreduce_vec_auto(v, |a, b| a + b);
                    assert_eq!(auto, tree, "p={p} n={n}");
                    assert_eq!(auto, rsag, "p={p} n={n}");
                }
            });
        }
    }

    #[test]
    fn crossover_lookup_uses_first_covering_bracket() {
        use super::{rsag_crossover_bytes, RSAG_CROSSOVER};
        // Brackets must be sorted so the first-match lookup is total.
        for w in RSAG_CROSSOVER.windows(2) {
            assert!(w[0].0 < w[1].0, "brackets must be strictly increasing");
        }
        assert_eq!(
            rsag_crossover_bytes(1),
            RSAG_CROSSOVER[0].1,
            "smallest bracket covers 1 rank"
        );
        // The sentinel bracket covers any communicator size.
        let huge = rsag_crossover_bytes(1 << 20);
        assert_eq!(huge, RSAG_CROSSOVER.last().unwrap().1);
    }

    #[test]
    #[should_panic(expected = "allreduce_vec_rsag length mismatch")]
    fn rsag_unequal_lengths_fail_fast_with_table() {
        World::run(4, |comm| {
            // Rank 2 contributes one element short: every rank must
            // panic with the per-rank length table instead of
            // deadlocking in the segment exchange.
            let n = if comm.rank() == 2 { 15 } else { 16 };
            let v: Vec<u64> = vec![1; n];
            let _ = comm.allreduce_vec_rsag(v, |a, b| a + b);
        });
    }

    #[test]
    fn rsag_mismatch_diagnostic_names_the_ranks() {
        let err = std::panic::catch_unwind(|| {
            World::run(2, |comm| {
                let n = if comm.rank() == 0 { 8 } else { 9 };
                let _ = comm.allreduce_vec_rsag(vec![0u8; n], |a, b| a + b);
            });
        })
        .expect_err("mismatched lengths must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(msg.contains("rank 0: 8"), "{msg}");
        assert!(msg.contains("rank 1: 9"), "{msg}");
    }

    #[test]
    fn gather_ordered_by_rank() {
        for p in sizes() {
            World::run(p, move |comm| {
                let got = comm.gather(0, format!("r{}", comm.rank()));
                if comm.rank() == 0 {
                    let got = got.unwrap();
                    for (i, s) in got.iter().enumerate() {
                        assert_eq!(s, &format!("r{i}"));
                    }
                } else {
                    assert!(got.is_none());
                }
            });
        }
    }

    #[test]
    fn allgather_ordered() {
        for p in sizes() {
            World::run(p, move |comm| {
                let got = comm.allgather(comm.rank() * 3);
                let expect: Vec<usize> = (0..p).map(|r| r * 3).collect();
                assert_eq!(got, expect);
            });
        }
    }

    #[test]
    fn scatter_roundtrip() {
        World::run(6, |comm| {
            let values = if comm.rank() == 2 {
                Some((0..6).map(|i| i * i).collect())
            } else {
                None
            };
            let got: usize = comm.scatter(2, values);
            assert_eq!(got, comm.rank() * comm.rank());
        });
    }

    #[test]
    fn alltoall_transpose() {
        for p in sizes() {
            World::run(p, move |comm| {
                // Send (me, dest) pairs; receive (src, me) pairs.
                let send: Vec<(usize, usize)> = (0..p).map(|d| (comm.rank(), d)).collect();
                let recv = comm.alltoall(send);
                for (s, pair) in recv.iter().enumerate() {
                    assert_eq!(*pair, (s, comm.rank()));
                }
            });
        }
    }

    #[test]
    fn inclusive_scan_prefix_sums() {
        for p in sizes() {
            World::run(p, move |comm| {
                let got = comm.scan(comm.rank() as u64 + 1, |a, b| a + b);
                let r = comm.rank() as u64 + 1;
                assert_eq!(got, r * (r + 1) / 2);
            });
        }
    }

    #[test]
    fn exclusive_scan_offsets() {
        World::run(5, |comm| {
            let counts = 10u64; // every rank contributes 10 items
            let offset = comm.exscan(counts, 0, |a, b| a + b);
            assert_eq!(offset, comm.rank() as u64 * 10);
        });
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(10))]

        /// The adaptive entry point agrees element-wise with both
        /// underlying algorithms for arbitrary lengths and exact ops,
        /// across 1/4/8 ranks (the deck sizes the conformance suite
        /// pins). Exact ops make "agree" mean bitwise.
        #[test]
        fn prop_auto_tree_rsag_agree(n in 0usize..257, seed in proptest::prelude::any::<u32>(), which_op in 0usize..3) {
            for p in [1usize, 4, 8] {
                World::run(p, move |comm| {
                    // Deterministic per-rank values from the case seed.
                    let v: Vec<u64> = (0..n as u64)
                        .map(|i| {
                            (seed as u64)
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(i * 31 + comm.rank() as u64 * 7919)
                        })
                        .collect();
                    let (tree, rsag, auto) = match which_op {
                        0 => (
                            comm.allreduce_vec(v.clone(), |a, b| a.wrapping_add(*b)),
                            comm.allreduce_vec_rsag(v.clone(), |a, b| a.wrapping_add(*b)),
                            comm.allreduce_vec_auto(v, |a, b| a.wrapping_add(*b)),
                        ),
                        1 => (
                            comm.allreduce_vec(v.clone(), |a, b| *a.min(b)),
                            comm.allreduce_vec_rsag(v.clone(), |a, b| *a.min(b)),
                            comm.allreduce_vec_auto(v, |a, b| *a.min(b)),
                        ),
                        _ => (
                            comm.allreduce_vec(v.clone(), |a, b| *a.max(b)),
                            comm.allreduce_vec_rsag(v.clone(), |a, b| *a.max(b)),
                            comm.allreduce_vec_auto(v, |a, b| *a.max(b)),
                        ),
                    };
                    assert_eq!(auto, tree, "p={p} n={n} op={which_op}");
                    assert_eq!(auto, rsag, "p={p} n={n} op={which_op}");
                });
            }
        }
    }

    #[test]
    fn barrier_orders_side_effects() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        World::run(8, move |comm| {
            c2.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must observe all 8 arrivals.
            assert_eq!(c2.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn back_to_back_collectives_do_not_cross() {
        World::run(7, |comm| {
            for round in 0..20u64 {
                let s = comm.allreduce_scalar(round, |a, b| a.max(b));
                assert_eq!(s, round);
                let b = comm.bcast(
                    (round % 7) as usize,
                    if comm.rank() as u64 == round % 7 {
                        Some(round)
                    } else {
                        None
                    },
                );
                assert_eq!(b, round);
            }
        });
    }
}
