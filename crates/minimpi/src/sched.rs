//! Deterministic scheduling: seed-driven serialized execution, delivery
//! traces, replay, and bounded interleaving exploration.
//!
//! The thread-backed substrate normally runs at the mercy of the OS
//! scheduler: which rank runs next, and which sender an `ANY_SOURCE`
//! receive matches first, differ run to run. That is faithful to real
//! MPI — and useless for reproducing a bad interleaving. This module
//! adds a cooperative scheduler that serializes rank execution around a
//! single turn token and makes every nondeterministic decision
//! explicitly, driven by a seeded RNG:
//!
//! * **run decisions** — at every scheduling point (post-send
//!   preemption, receive blocking, rank completion) the policy picks
//!   which runnable rank executes next;
//! * **match decisions** — when an `ANY_SOURCE` receive could match
//!   envelopes from several senders, the policy picks the sender;
//! * **virtual time** — injected link delays advance a virtual clock
//!   instead of sleeping, and `recv_deadline` times out *only at
//!   quiescence* (no rank can run), earliest virtual deadline first,
//!   ties broken by world slot. Rank-side span timings run on
//!   [`probe::time`]'s per-thread virtual tick source.
//!
//! Every decision and delivery is recorded in a [`Trace`]. The same
//! [`SchedPolicy::Seeded`] seed replays the identical schedule
//! byte-for-byte; [`SchedPolicy::Replay`] forces a recorded trace and
//! panics with a diff on the first divergence. A deadlock under the
//! deterministic scheduler is detected *exactly* (the ready set empties
//! with unfinished ranks) — no grace period, no wall-clock watchdog —
//! and every blocked rank panics with a per-rank dump plus the seed.
//!
//! [`Explorer`] drives a bounded interleaving search: many independent
//! seeded worlds under `catch_unwind`, returning the first failure's
//! seed, panic message, and replayable trace.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::envelope::Tag;

/// How a world schedules its ranks.
#[derive(Clone, Debug)]
pub enum SchedPolicy {
    /// OS threads run freely (the default; faithful nondeterminism).
    Os,
    /// Serialized deterministic execution: every scheduling and
    /// matching decision comes from an RNG seeded with this value. The
    /// same seed reproduces the identical interleaving, delivery trace,
    /// and (under virtual time) byte-identical observability output.
    Seeded(u64),
    /// Re-execute a recorded [`Trace`]: decisions are forced from the
    /// trace and every emitted event is verified against it; the first
    /// divergence panics with a diff.
    Replay(Trace),
    /// Systematic exploration: a forced decision prefix steers the run
    /// down one branch of the schedule tree, and past the prefix a
    /// deterministic fair round-robin default takes over. Every
    /// decision (its enabled set and the value chosen) is recorded in
    /// the guide's [`DecisionLog`] so the DPOR explorer
    /// ([`crate::dpor::Checker`]) can compute backtrack points. The
    /// round-robin default is *fair*: no enabled rank is skipped more
    /// than a full rotation, so a liveness finding under this policy is
    /// a program bug, not scheduler-induced starvation.
    Guided(Guide),
}

/// The kind of a recorded scheduling decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionKind {
    /// Which runnable world slot received the turn token.
    Run,
    /// Which communicator-local source an `ANY_SOURCE` receive on
    /// world slot `slot` matched.
    Match {
        /// Receiving world slot.
        slot: usize,
    },
}

/// One scheduling decision a guided run made: the choices that were
/// enabled, the one taken, and where in the delivery trace it landed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecisionRecord {
    /// What was being decided.
    pub kind: DecisionKind,
    /// The enabled choice values (world slots for [`DecisionKind::Run`],
    /// communicator-local sources for [`DecisionKind::Match`]), in
    /// deterministic order.
    pub enabled: Vec<usize>,
    /// The value chosen.
    pub chosen: usize,
    /// Index into [`Trace::events`] at the instant of the decision (the
    /// chosen slot's actions land at and after this position).
    pub trace_pos: usize,
}

/// Shared log of every decision a [`SchedPolicy::Guided`] run made.
/// Clones share the log; take the records after the world joins.
#[derive(Clone, Default)]
pub struct DecisionLog {
    inner: Arc<Mutex<DecisionLogState>>,
}

#[derive(Default)]
struct DecisionLogState {
    records: Vec<DecisionRecord>,
    divergences: usize,
}

impl DecisionLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the recorded decisions and the count of prefix divergences
    /// (forced choices that were not enabled when their turn came),
    /// leaving the log empty.
    pub fn take(&self) -> (Vec<DecisionRecord>, usize) {
        let mut st = self.inner.lock();
        (
            std::mem::take(&mut st.records),
            std::mem::take(&mut st.divergences),
        )
    }

    fn push(&self, record: DecisionRecord) {
        self.inner.lock().records.push(record);
    }

    fn mark_divergence(&self) {
        self.inner.lock().divergences += 1;
    }
}

/// Steering input for a [`SchedPolicy::Guided`] run: a forced decision
/// prefix (chosen *values*, one per decision point) plus the shared
/// [`DecisionLog`] the run records into.
#[derive(Clone, Default)]
pub struct Guide {
    prefix: Arc<Vec<usize>>,
    log: DecisionLog,
}

impl Guide {
    /// A guide forcing the first `prefix.len()` decisions to the given
    /// choice values (a forced value that is not enabled at its
    /// decision point is skipped and counted as a divergence).
    pub fn new(prefix: Vec<usize>) -> Guide {
        Guide {
            prefix: Arc::new(prefix),
            log: DecisionLog::new(),
        }
    }

    /// A handle on the log this guide's run records into.
    pub fn log(&self) -> DecisionLog {
        self.log.clone()
    }
}

impl std::fmt::Debug for Guide {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Guide {{ prefix: {:?} }}", self.prefix)
    }
}

/// Bounded-fairness liveness thresholds for a scheduled world. All
/// counts are in scheduling decisions (turn-token grants), so breaches
/// are deterministic and replay exactly: re-running a recorded trace
/// under the same spec aborts at the same event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LivenessSpec {
    /// Abort once this many scheduling decisions have been made with
    /// unfinished ranks (livelock / starvation backstop).
    pub max_decisions: u64,
    /// Abort when one rank passes this many consecutive
    /// [`yield_point`] spins without making progress (a send, match,
    /// or interactive event resets the count) — the backpressure
    /// publisher-spinning-forever shape.
    pub spin_limit: u64,
    /// When the decision budget trips, a live rank that made no
    /// progress in this many trailing decisions while others kept
    /// progressing is reported as starved.
    pub starvation_window: u64,
}

impl Default for LivenessSpec {
    fn default() -> Self {
        LivenessSpec {
            max_decisions: 20_000,
            spin_limit: 2_000,
            starvation_window: 1_000,
        }
    }
}

/// One entry of a delivery trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// The scheduler granted the turn to world slot `slot`.
    Run {
        /// Chosen world slot.
        slot: usize,
    },
    /// World slot `from` delivered a message to world slot `to`.
    Send {
        /// Sending world slot.
        from: usize,
        /// Receiving world slot.
        to: usize,
        /// Raw tag bits.
        tag: u64,
    },
    /// World slot `slot` matched an `ANY_SOURCE` receive against the
    /// envelope from communicator-local rank `src`.
    Match {
        /// Receiving world slot.
        slot: usize,
        /// Chosen communicator-local source rank.
        src: usize,
        /// Raw tag bits.
        tag: u64,
    },
    /// World slot `slot` applied an interactive query or steering
    /// command from client `client` at bridge step `step`. The payload
    /// itself lives outside the transport; its FNV-1a digest pins the
    /// bytes, so a replayed session must deliver the identical command
    /// stream in the identical schedule position.
    Interactive {
        /// World slot that applied the command.
        slot: usize,
        /// Interactive client id.
        client: u64,
        /// Bridge step the command was applied at.
        step: u64,
        /// FNV-1a digest of the serialized payload.
        digest: u64,
    },
}

impl Event {
    fn to_json(&self) -> probe::Json {
        use probe::Json;
        match self {
            Event::Run { slot } => Json::Arr(vec![Json::Str("r".into()), Json::Num(*slot as f64)]),
            Event::Send { from, to, tag } => Json::Arr(vec![
                Json::Str("s".into()),
                Json::Num(*from as f64),
                Json::Num(*to as f64),
                Json::Str(format!("{tag:x}")),
            ]),
            Event::Match { slot, src, tag } => Json::Arr(vec![
                Json::Str("m".into()),
                Json::Num(*slot as f64),
                Json::Num(*src as f64),
                Json::Str(format!("{tag:x}")),
            ]),
            Event::Interactive {
                slot,
                client,
                step,
                digest,
            } => Json::Arr(vec![
                Json::Str("q".into()),
                Json::Num(*slot as f64),
                Json::Num(*client as f64),
                Json::Num(*step as f64),
                Json::Str(format!("{digest:x}")),
            ]),
        }
    }

    fn from_json(v: &probe::Json) -> Result<Event, String> {
        let items = v.as_arr().ok_or("event is not an array")?;
        let kind = items
            .first()
            .and_then(probe::Json::as_str)
            .ok_or("event missing kind")?;
        let num = |i: usize| -> Result<usize, String> {
            items
                .get(i)
                .and_then(probe::Json::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| format!("event field {i} is not an index"))
        };
        let tag = |i: usize| -> Result<u64, String> {
            let s = items
                .get(i)
                .and_then(probe::Json::as_str)
                .ok_or_else(|| format!("event field {i} is not a tag"))?;
            u64::from_str_radix(s, 16).map_err(|e| format!("bad tag '{s}': {e}"))
        };
        match kind {
            "r" => Ok(Event::Run { slot: num(1)? }),
            "s" => Ok(Event::Send {
                from: num(1)?,
                to: num(2)?,
                tag: tag(3)?,
            }),
            "m" => Ok(Event::Match {
                slot: num(1)?,
                src: num(2)?,
                tag: tag(3)?,
            }),
            "q" => Ok(Event::Interactive {
                slot: num(1)?,
                client: num(2)? as u64,
                step: num(3)? as u64,
                digest: tag(4)?,
            }),
            other => Err(format!("unknown event kind '{other}'")),
        }
    }
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Event::Run { slot } => write!(f, "run slot {slot}"),
            Event::Send { from, to, tag } => {
                write!(f, "send {from} -> {to} tag {}", Tag(*tag))
            }
            Event::Match { slot, src, tag } => {
                write!(f, "match slot {slot} <- src {src} tag {}", Tag(*tag))
            }
            Event::Interactive {
                slot,
                client,
                step,
                digest,
            } => write!(
                f,
                "interactive slot {slot} client {client} step {step} digest {digest:016x}"
            ),
        }
    }
}

/// A recorded schedule: the seed it ran under and every decision and
/// delivery, in order. Serializes to compact JSON via [`probe::Json`]
/// so a failing run can print itself and be replayed from a log.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Seed of the run that produced this trace (`None` for replays of
    /// hand-built traces).
    pub seed: Option<u64>,
    /// Every decision and delivery, in schedule order.
    pub events: Vec<Event>,
}

impl Trace {
    /// Serialize to one compact JSON line.
    pub fn to_json(&self) -> String {
        use probe::Json;
        let mut members = Vec::new();
        match self.seed {
            Some(seed) => members.push(("seed".to_string(), Json::Num(seed as f64))),
            None => members.push(("seed".to_string(), Json::Null)),
        }
        members.push((
            "events".to_string(),
            Json::Arr(self.events.iter().map(Event::to_json).collect()),
        ));
        Json::Obj(members).to_string()
    }

    /// Parse a trace previously written by [`Trace::to_json`].
    pub fn from_json(text: &str) -> Result<Trace, String> {
        let v = probe::Json::parse(text)?;
        let seed = match v.get("seed") {
            Some(probe::Json::Null) | None => None,
            Some(s) => Some(s.as_u64().ok_or("seed is not an integer")?),
        };
        let events = v
            .get("events")
            .and_then(probe::Json::as_arr)
            .ok_or("missing events array")?
            .iter()
            .map(Event::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Trace { seed, events })
    }
}

/// Shared slot a world deposits its finished [`Trace`] into (also on
/// panic), so tests and the [`Explorer`] can retrieve the schedule of
/// a run that unwound. Clones share the slot.
#[derive(Clone, Default)]
pub struct TraceCell {
    inner: Arc<Mutex<Option<Trace>>>,
}

impl TraceCell {
    /// An empty cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the deposited trace, leaving the cell empty.
    pub fn take(&self) -> Option<Trace> {
        self.inner.lock().take()
    }

    pub(crate) fn set(&self, trace: Trace) {
        *self.inner.lock() = Some(trace);
    }
}

/// Why a blocked receive woke up.
pub(crate) enum Wake {
    /// New mail may have arrived; re-check the pending queue.
    Mail,
    /// The receive's virtual deadline fired at quiescence.
    Deadline,
    /// The world is aborting (deadlock or replay divergence); panic
    /// with this message.
    Abort(String),
}

/// What a rank is blocked on, for exact deadlock reports and deadline
/// arbitration.
pub(crate) struct WaitInfo {
    pub comm_rank: usize,
    pub comm_size: usize,
    /// Awaited communicator-local source ([`crate::ANY_SOURCE`] = any).
    pub src: usize,
    pub tag: Tag,
    /// Absolute virtual deadline in nanoseconds, when the receive has
    /// one.
    pub deadline_nanos: Option<u64>,
    /// Snapshot of unmatched `(src, tag)` pairs in the pending queue.
    pub pending: Vec<(usize, Tag)>,
}

enum Status {
    Runnable,
    Blocked(WaitInfo),
    Finished,
}

enum Mode {
    Seeded(StdRng),
    Replay {
        recorded: Vec<Event>,
        pos: usize,
    },
    Guided {
        guide: Guide,
        /// Next decision index (consumes the guide's prefix).
        pos: usize,
        /// Fair round-robin rotor: the slot the default policy tries
        /// first at the next run decision.
        rotor: usize,
    },
}

/// Which liveness threshold tripped.
enum LivenessBreach {
    /// The global decision budget ran out with unfinished ranks.
    Budget,
    /// This slot hit the consecutive-spin limit at a [`yield_point`].
    Spin(usize),
}

struct State {
    mode: Mode,
    /// World slot currently holding the turn token.
    current: Option<usize>,
    /// Set once the first grant has been made.
    started: bool,
    status: Vec<Status>,
    /// Per-slot flag: the last wake was a deadline expiry.
    deadline_fired: Vec<bool>,
    /// Virtual clock, nanoseconds. Advanced by injected link delays
    /// and by deadline expiry at quiescence.
    vclock_nanos: u64,
    trace: Trace,
    /// Set when the world must abort (exact deadlock, replay
    /// divergence, or liveness breach). Every waiting rank panics with
    /// this message.
    abort: Option<String>,
    /// Bounded-fairness thresholds, when liveness analysis is on.
    liveness: Option<LivenessSpec>,
    /// Scheduling decisions made so far (turn-token grants).
    decisions: u64,
    /// Per-slot consecutive [`yield_point`] spins without progress.
    spin_counts: Vec<u64>,
    /// Per-slot decision count at the last progress event (send,
    /// match, or interactive).
    last_progress: Vec<u64>,
}

/// The serialized deterministic scheduler shared by every rank of one
/// world. At most one rank executes user code at any instant; all
/// interleaving freedom is concentrated in the explicit decisions this
/// type makes (and records).
pub(crate) struct Sched {
    state: Mutex<State>,
    cv: Condvar,
}

impl Sched {
    /// Build the engine for a deterministic policy.
    ///
    /// # Panics
    /// Panics when handed [`SchedPolicy::Os`] — an OS-scheduled world
    /// has no engine.
    pub(crate) fn new(
        size: usize,
        policy: &SchedPolicy,
        liveness: Option<LivenessSpec>,
    ) -> Arc<Sched> {
        let (mode, seed) = match policy {
            SchedPolicy::Os => panic!("SchedPolicy::Os has no scheduler engine"),
            SchedPolicy::Seeded(seed) => (Mode::Seeded(StdRng::seed_from_u64(*seed)), Some(*seed)),
            SchedPolicy::Replay(trace) => (
                Mode::Replay {
                    recorded: trace.events.clone(),
                    pos: 0,
                },
                trace.seed,
            ),
            SchedPolicy::Guided(guide) => (
                Mode::Guided {
                    guide: guide.clone(),
                    pos: 0,
                    rotor: 0,
                },
                None,
            ),
        };
        Arc::new(Sched {
            state: Mutex::new(State {
                mode,
                current: None,
                started: false,
                status: (0..size).map(|_| Status::Runnable).collect(),
                deadline_fired: vec![false; size],
                vclock_nanos: 0,
                trace: Trace {
                    seed,
                    events: Vec::new(),
                },
                abort: None,
                liveness,
                decisions: 0,
                spin_counts: vec![0; size],
                last_progress: vec![0; size],
            }),
            cv: Condvar::new(),
        })
    }

    /// Block until this rank is granted the turn token for the first
    /// time. Called once per rank before user code runs.
    pub(crate) fn acquire(&self, slot: usize) {
        let mut s = self.state.lock();
        if !s.started {
            s.started = true;
            self.pick_and_grant(&mut s);
            self.cv.notify_all();
        }
        while s.current != Some(slot) {
            if let Some(msg) = &s.abort {
                let msg = msg.clone();
                drop(s);
                panic!("{msg}");
            }
            self.cv.wait(&mut s);
        }
    }

    /// Scheduling point after a delivery: record the send, wake the
    /// destination if it was blocked, then let the policy decide who
    /// runs next (post-send preemption).
    pub(crate) fn on_send(&self, from_slot: usize, to_slot: usize, tag: Tag) {
        let mut s = self.state.lock();
        self.emit(
            &mut s,
            Event::Send {
                from: from_slot,
                to: to_slot,
                tag: tag.0,
            },
        );
        if matches!(s.status[to_slot], Status::Blocked(_)) {
            s.status[to_slot] = Status::Runnable;
        }
        self.reschedule(s, from_slot);
    }

    /// Block this rank on a receive. Returns why it woke.
    pub(crate) fn block_recv(&self, slot: usize, info: WaitInfo) -> Wake {
        let mut s = self.state.lock();
        debug_assert_eq!(s.current, Some(slot), "block_recv without the token");
        s.status[slot] = Status::Blocked(info);
        self.pick_and_grant(&mut s);
        self.cv.notify_all();
        loop {
            if let Some(msg) = &s.abort {
                return Wake::Abort(msg.clone());
            }
            if s.current == Some(slot) {
                // Granted again: either a sender woke us or our
                // deadline fired at quiescence.
                s.status[slot] = Status::Runnable;
                if s.deadline_fired[slot] {
                    s.deadline_fired[slot] = false;
                    return Wake::Deadline;
                }
                return Wake::Mail;
            }
            self.cv.wait(&mut s);
        }
    }

    /// Choose which source an `ANY_SOURCE` receive matches, among the
    /// communicator-local `candidates` (distinct sources with a
    /// matching envelope, in pending-queue order).
    pub(crate) fn choose_match(&self, slot: usize, candidates: &[usize], tag: Tag) -> usize {
        debug_assert!(!candidates.is_empty());
        let mut s = self.state.lock();
        let trace_pos = s.trace.events.len();
        let src = match &mut s.mode {
            Mode::Seeded(rng) => candidates[rng.gen_range(0..candidates.len())],
            Mode::Guided { guide, pos, .. } => guided_choice(
                guide,
                pos,
                candidates,
                candidates[0],
                DecisionKind::Match { slot },
                trace_pos,
            ),
            Mode::Replay { recorded, pos } => match recorded.get(*pos) {
                Some(Event::Match {
                    slot: r_slot,
                    src,
                    tag: r_tag,
                }) if *r_slot == slot && *r_tag == tag.0 && candidates.contains(src) => *src,
                other => {
                    let msg = self.divergence_message(
                        *pos,
                        other.cloned(),
                        format!(
                            "match slot {slot} tag {} among candidates {candidates:?}",
                            Tag(tag.0)
                        ),
                    );
                    self.raise_abort(&mut s, msg.clone());
                    drop(s);
                    panic!("{msg}");
                }
            },
        };
        self.emit(
            &mut s,
            Event::Match {
                slot,
                src,
                tag: tag.0,
            },
        );
        src
    }

    /// Record an interactive query/steering command in the delivery
    /// trace. Pure bookkeeping — the rank keeps the turn token — but
    /// under replay the event is verified in schedule position like any
    /// delivery, so a session whose command stream changed diverges
    /// immediately instead of silently producing different results.
    pub(crate) fn on_interactive(&self, slot: usize, client: u64, step: u64, digest: u64) {
        let mut s = self.state.lock();
        self.emit(
            &mut s,
            Event::Interactive {
                slot,
                client,
                step,
                digest,
            },
        );
        if let Some(msg) = &s.abort {
            let msg = msg.clone();
            drop(s);
            panic!("{msg}");
        }
    }

    /// Advance the virtual clock (injected link delay).
    pub(crate) fn advance_clock(&self, by: Duration) {
        let mut s = self.state.lock();
        s.vclock_nanos = s.vclock_nanos.saturating_add(by.as_nanos() as u64);
    }

    /// Current virtual time in nanoseconds.
    pub(crate) fn vclock_nanos(&self) -> u64 {
        self.state.lock().vclock_nanos
    }

    /// Mark this rank finished (normal return or unwind) and hand the
    /// token onward.
    pub(crate) fn finish(&self, slot: usize) {
        let mut s = self.state.lock();
        s.status[slot] = Status::Finished;
        s.deadline_fired[slot] = false;
        if s.current == Some(slot) {
            self.pick_and_grant(&mut s);
        }
        self.cv.notify_all();
    }

    /// The trace recorded so far (complete once the world joined).
    pub(crate) fn trace(&self) -> Trace {
        self.state.lock().trace.clone()
    }

    /// Release the token held by `slot` and wait to get it back.
    fn reschedule(&self, mut s: parking_lot::MutexGuard<'_, State>, slot: usize) {
        self.pick_and_grant(&mut s);
        self.cv.notify_all();
        while s.current != Some(slot) {
            if let Some(msg) = &s.abort {
                let msg = msg.clone();
                drop(s);
                panic!("{msg}");
            }
            self.cv.wait(&mut s);
        }
    }

    /// Pick the next runnable rank (policy decision) and grant it the
    /// token; resolve quiescence (deadline expiry or exact deadlock)
    /// when the ready set is empty.
    fn pick_and_grant(&self, s: &mut State) {
        let runnable: Vec<usize> = s
            .status
            .iter()
            .enumerate()
            .filter(|(_, st)| matches!(st, Status::Runnable))
            .map(|(slot, _)| slot)
            .collect();
        if runnable.is_empty() {
            self.resolve_quiescence(s);
            return;
        }
        s.decisions += 1;
        if let Some(spec) = s.liveness {
            if spec.max_decisions > 0 && s.decisions > spec.max_decisions {
                let report = self.liveness_report(s, LivenessBreach::Budget);
                self.raise_abort(s, report);
                return;
            }
        }
        let size = s.status.len();
        let trace_pos = s.trace.events.len();
        let slot = match &mut s.mode {
            Mode::Seeded(rng) => runnable[rng.gen_range(0..runnable.len())],
            Mode::Guided { guide, pos, rotor } => {
                // Fair round-robin default: the first enabled slot at or
                // cyclically after the rotor, so no enabled rank waits
                // more than one full rotation.
                let start = *rotor;
                let fair = (0..size)
                    .map(|k| (start + k) % size)
                    .find(|slot| runnable.contains(slot))
                    .unwrap_or(runnable[0]);
                let chosen =
                    guided_choice(guide, pos, &runnable, fair, DecisionKind::Run, trace_pos);
                *rotor = (chosen + 1) % size;
                chosen
            }
            Mode::Replay { recorded, pos } => match recorded.get(*pos) {
                Some(Event::Run { slot }) if runnable.contains(slot) => *slot,
                other => {
                    let msg = self.divergence_message(
                        *pos,
                        other.cloned(),
                        format!("run decision among runnable {runnable:?}"),
                    );
                    self.raise_abort(s, msg);
                    return;
                }
            },
        };
        self.emit(s, Event::Run { slot });
        s.current = Some(slot);
    }

    /// No rank can run. Fire the earliest virtual deadline (ties broken
    /// by slot) or declare an exact deadlock.
    fn resolve_quiescence(&self, s: &mut State) {
        s.current = None;
        let mut earliest: Option<(u64, usize)> = None;
        let mut unfinished = 0usize;
        for (slot, st) in s.status.iter().enumerate() {
            match st {
                Status::Finished => {}
                Status::Runnable => unreachable!("quiescence with a runnable rank"),
                Status::Blocked(info) => {
                    unfinished += 1;
                    if let Some(d) = info.deadline_nanos {
                        if earliest.is_none_or(|(bd, bs)| (d, slot) < (bd, bs)) {
                            earliest = Some((d, slot));
                        }
                    }
                }
            }
        }
        if let Some((deadline, slot)) = earliest {
            s.vclock_nanos = s.vclock_nanos.max(deadline);
            s.deadline_fired[slot] = true;
            s.status[slot] = Status::Runnable;
            self.emit(s, Event::Run { slot });
            s.current = Some(slot);
            return;
        }
        if unfinished > 0 {
            let report = self.deadlock_report(s, unfinished);
            self.raise_abort(s, report);
        }
        // All ranks finished: nothing to grant.
    }

    /// Record an event; under replay, verify it against the recording.
    fn emit(&self, s: &mut State, event: Event) {
        if let Mode::Replay { recorded, pos } = &mut s.mode {
            match recorded.get(*pos) {
                Some(expected) if *expected == event => *pos += 1,
                other => {
                    let msg = self.divergence_message(*pos, other.cloned(), format!("{event}"));
                    self.raise_abort(s, msg);
                    // Keep recording so the divergent trace is visible.
                }
            }
        }
        // A send, match, or interactive event is progress for its
        // actor: reset the spin count and stamp the liveness window.
        // Merely being granted the token (Run) is not progress.
        let actor = match &event {
            Event::Send { from, .. } => Some(*from),
            Event::Match { slot, .. } | Event::Interactive { slot, .. } => Some(*slot),
            Event::Run { .. } => None,
        };
        if let Some(actor) = actor {
            s.spin_counts[actor] = 0;
            s.last_progress[actor] = s.decisions;
        }
        s.trace.events.push(event);
    }

    fn divergence_message(&self, pos: usize, expected: Option<Event>, got: String) -> String {
        match expected {
            Some(e) => format!(
                "minimpi sched: replay diverged at event {pos}: trace recorded [{e}], \
                 this execution produced [{got}] — the program or its inputs changed \
                 since the trace was recorded"
            ),
            None => format!(
                "minimpi sched: replay diverged at event {pos}: trace is exhausted but \
                 this execution produced [{got}]"
            ),
        }
    }

    /// Compose the exact-deadlock report: every live rank's wait state.
    fn deadlock_report(&self, s: &State, live: usize) -> String {
        let seed = match s.trace.seed {
            Some(seed) => format!(" (seed {seed})"),
            None => String::new(),
        };
        let mut report = format!(
            "minimpi sched: deterministic deadlock detected{seed} — all {live} live rank(s) \
             blocked in recv with an empty ready set:"
        );
        for (slot, st) in s.status.iter().enumerate() {
            let Status::Blocked(info) = st else { continue };
            let src = if info.src == crate::ANY_SOURCE {
                "any source".to_string()
            } else {
                format!("src {}", info.src)
            };
            report.push_str(&format!(
                "\n  world rank {slot}: rank {}/{} waiting for {src}, tag {}; pending ({})",
                info.comm_rank,
                info.comm_size,
                info.tag,
                info.pending.len(),
            ));
            if info.pending.is_empty() {
                report.push_str(": []");
            } else {
                let shown: Vec<String> = info
                    .pending
                    .iter()
                    .take(8)
                    .map(|(src, tag)| format!("from {src}: {tag}"))
                    .collect();
                let ellipsis = if info.pending.len() > 8 { ", ..." } else { "" };
                report.push_str(&format!(": [{}{ellipsis}]", shown.join(", ")));
            }
        }
        report
    }

    /// A cooperative spin from [`yield_point`]: count it against the
    /// slot's spin limit, then hand the token around (an ordinary run
    /// decision, so guided/replayed schedules see it like any other
    /// scheduling point).
    fn spin_yield(&self, slot: usize) {
        let mut s = self.state.lock();
        if s.current != Some(slot) {
            // Defensive: a yield from a thread that does not hold the
            // token (e.g. an offload worker) is a no-op.
            return;
        }
        s.spin_counts[slot] = s.spin_counts[slot].saturating_add(1);
        if let Some(spec) = s.liveness {
            if spec.spin_limit > 0 && s.spin_counts[slot] >= spec.spin_limit {
                let report = self.liveness_report(&s, LivenessBreach::Spin(slot));
                self.raise_abort(&mut s, report.clone());
                drop(s);
                panic!("{report}");
            }
        }
        self.reschedule(s, slot);
    }

    /// Compose a liveness-violation report: the breach headline plus
    /// every rank's progress state. Deterministic (decision counts, no
    /// wall clock), so a replayed trace reproduces it verbatim.
    fn liveness_report(&self, s: &State, breach: LivenessBreach) -> String {
        let spec = s.liveness.unwrap_or_default();
        let headline = match breach {
            LivenessBreach::Spin(slot) => format!(
                "livelock: world rank {slot} spun {} consecutive scheduling points without \
                 making progress (spin limit {}; a backpressure loop that never drains?)",
                s.spin_counts[slot], spec.spin_limit
            ),
            LivenessBreach::Budget => {
                let horizon = s.decisions.saturating_sub(spec.starvation_window);
                let mut starved: Vec<usize> = Vec::new();
                let mut progressing = false;
                let mut unfinished = 0usize;
                for (slot, st) in s.status.iter().enumerate() {
                    if matches!(st, Status::Finished) {
                        continue;
                    }
                    unfinished += 1;
                    if s.last_progress[slot] <= horizon {
                        starved.push(slot);
                    } else {
                        progressing = true;
                    }
                }
                if spec.starvation_window > 0 && progressing && !starved.is_empty() {
                    format!(
                        "starvation: world rank(s) {starved:?} made no progress for {} \
                         scheduling points while other ranks kept running (budget {} decisions)",
                        spec.starvation_window, spec.max_decisions
                    )
                } else {
                    format!(
                        "livelock: scheduling budget of {} decisions exhausted with {unfinished} \
                         rank(s) unfinished",
                        spec.max_decisions
                    )
                }
            }
        };
        let seed = match s.trace.seed {
            Some(seed) => format!(" (seed {seed})"),
            None => String::new(),
        };
        let mut report = format!("minimpi sched: liveness violation{seed} — {headline}");
        for (slot, st) in s.status.iter().enumerate() {
            let state = match st {
                Status::Finished => "finished".to_string(),
                Status::Runnable => "runnable".to_string(),
                Status::Blocked(info) => {
                    let src = if info.src == crate::ANY_SOURCE {
                        "any source".to_string()
                    } else {
                        format!("src {}", info.src)
                    };
                    format!(
                        "blocked waiting for {src}, tag {} ({} pending)",
                        info.tag,
                        info.pending.len()
                    )
                }
            };
            report.push_str(&format!(
                "\n  world rank {slot}: {state}; last progress at decision {}/{}; spin count {}",
                s.last_progress[slot], s.decisions, s.spin_counts[slot]
            ));
        }
        report
    }

    fn raise_abort(&self, s: &mut State, msg: String) {
        if s.abort.is_none() {
            s.abort = Some(msg);
        }
        s.current = None;
        self.cv.notify_all();
    }
}

/// Releases a rank's hold on the scheduler when its closure exits —
/// normally or by unwind — so the remaining ranks keep scheduling.
pub(crate) struct SchedFinishGuard {
    pub sched: Arc<Sched>,
    pub slot: usize,
}

impl Drop for SchedFinishGuard {
    fn drop(&mut self) {
        self.sched.finish(self.slot);
    }
}

/// Resolve one guided decision: consume the forced prefix while it
/// lasts (skipping, and counting, forced values that are not enabled),
/// fall back to the deterministic default past it, and record the
/// decision in the guide's log.
fn guided_choice(
    guide: &Guide,
    pos: &mut usize,
    enabled: &[usize],
    default: usize,
    kind: DecisionKind,
    trace_pos: usize,
) -> usize {
    let idx = *pos;
    *pos += 1;
    let mut chosen = default;
    if let Some(&forced) = guide.prefix.get(idx) {
        if enabled.contains(&forced) {
            chosen = forced;
        } else {
            guide.log.mark_divergence();
        }
    }
    guide.log.push(DecisionRecord {
        kind,
        enabled: enabled.to_vec(),
        chosen,
        trace_pos,
    });
    chosen
}

thread_local! {
    /// The scheduler and world slot of the rank running on this thread,
    /// installed for the lifetime of the rank closure so library code
    /// (e.g. the staging broker's backpressure loop) can reach the
    /// scheduler without threading it through every call.
    static THREAD_SCHED: std::cell::RefCell<Option<(Arc<Sched>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Installs this thread's scheduler handle; the guard uninstalls it.
pub(crate) struct ThreadSchedGuard;

pub(crate) fn install_thread(sched: &Arc<Sched>, slot: usize) -> ThreadSchedGuard {
    THREAD_SCHED.with(|t| *t.borrow_mut() = Some((Arc::clone(sched), slot)));
    ThreadSchedGuard
}

impl Drop for ThreadSchedGuard {
    fn drop(&mut self) {
        THREAD_SCHED.with(|t| *t.borrow_mut() = None);
    }
}

/// Cooperative scheduling point for spin/backpressure loops.
///
/// Inside a deterministically scheduled world this hands the turn
/// token around (so other ranks can make the progress the spinner is
/// waiting for) and counts the spin against the world's
/// [`LivenessSpec::spin_limit`] — a loop that spins past the limit is
/// reported as a livelock with a replayable trace. Outside a scheduled
/// world (OS policy, helper threads such as offload workers) it is a
/// no-op, so library code can call it unconditionally.
pub fn yield_point() {
    let entry = THREAD_SCHED.with(|t| t.borrow().clone());
    if let Some((sched, slot)) = entry {
        sched.spin_yield(slot);
    }
}

/// One failing interleaving found by an [`Explorer`].
#[derive(Clone, Debug)]
pub struct ExploreFailure {
    /// The seed whose schedule failed.
    pub seed: u64,
    /// The recorded schedule; replay it with
    /// [`SchedPolicy::Replay`] to reproduce the failure exactly.
    pub trace: Trace,
    /// The panic message of the failing run.
    pub message: String,
}

/// How much schedule space an [`Explorer`] may search.
#[derive(Clone, Copy, Debug)]
pub enum ExploreBudget {
    /// Explore exactly this many schedules — deterministic run to run,
    /// the right budget for CI.
    Schedules(usize),
    /// Stop starting new runs once this much wall time has elapsed
    /// (checked between runs; a run in flight completes). Inherently
    /// nondeterministic; combine with [`ExploreBudget::Schedules`] to
    /// keep a reproducible ceiling.
    Wall(Duration),
}

/// Bounded interleaving search: runs the same SPMD closure under many
/// independent seeds ([`SchedPolicy::Seeded`]), permuting run order,
/// `ANY_SOURCE` matching, and (through post-send preemption) the
/// ordering around fault sites — a DPOR-lite random walk over the
/// interleaving space. Stops at the first failure and returns its seed,
/// panic message, and replayable trace.
pub struct Explorer {
    base_seed: u64,
    max_runs: usize,
    time_budget: Option<Duration>,
    sanitize: bool,
}

impl Explorer {
    /// An explorer deriving run seeds `base_seed, base_seed+1, …`.
    pub fn new(base_seed: u64) -> Self {
        Explorer {
            base_seed,
            max_runs: 64,
            time_budget: None,
            sanitize: false,
        }
    }

    /// Cap the number of seeded runs (default 64). Equivalent to
    /// [`Explorer::budget`] with [`ExploreBudget::Schedules`].
    pub fn max_runs(mut self, runs: usize) -> Self {
        self.max_runs = runs;
        self
    }

    /// Stop starting new runs once this much wall time has elapsed
    /// (checked between runs; a run in flight completes). Equivalent
    /// to [`Explorer::budget`] with [`ExploreBudget::Wall`].
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Set an exploration budget. [`ExploreBudget::Schedules`] replaces
    /// the schedule-count cap (the deterministic budget CI should pin);
    /// [`ExploreBudget::Wall`] sets the optional wall-clock cap. The
    /// two compose: call once with each to bound both.
    pub fn budget(mut self, budget: ExploreBudget) -> Self {
        match budget {
            ExploreBudget::Schedules(runs) => self.max_runs = runs,
            ExploreBudget::Wall(d) => self.time_budget = Some(d),
        }
        self
    }

    /// Race hunting: install a fresh happens-before sanitizer session
    /// (`sanitizer::Mode::Collect`) on every run. A run whose schedule
    /// passes all program asserts but trips the sanitizer still counts
    /// as a failure — its findings become the failure message, with
    /// the same replayable seed + trace as a panic.
    pub fn sanitize(mut self) -> Self {
        self.sanitize = true;
        self
    }

    /// Search interleavings of `f` on a world of `size` ranks. Returns
    /// the first failure, or `None` if every explored schedule passed.
    pub fn run<F>(&self, size: usize, f: F) -> Option<ExploreFailure>
    where
        F: Fn(&crate::Comm) + Send + Sync + 'static,
    {
        self.run_with(size, |b| b, f)
    }

    /// Like [`Explorer::run`], with a hook to configure each world
    /// (e.g. install a [`crate::FaultHandle`] so fault sites join the
    /// permuted space).
    pub fn run_with<C, F>(&self, size: usize, configure: C, f: F) -> Option<ExploreFailure>
    where
        C: Fn(crate::WorldBuilder) -> crate::WorldBuilder,
        F: Fn(&crate::Comm) + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let t0 = probe::time::Wall::now();
        for i in 0..self.max_runs {
            if let Some(budget) = self.time_budget {
                if t0.elapsed() >= budget && i > 0 {
                    return None;
                }
            }
            let seed = self.base_seed.wrapping_add(i as u64);
            let cell = TraceCell::new();
            let g = Arc::clone(&f);
            // Collect mode: a data race must not abort the run mid-way
            // (the program asserts still get their chance); findings
            // are promoted to a failure after a clean exit.
            let session = self
                .sanitize
                .then(|| sanitizer::Session::new(size, sanitizer::Mode::Collect));
            let mut builder = configure(crate::WorldBuilder::new(size))
                .sched(SchedPolicy::Seeded(seed))
                .trace_cell(&cell);
            if let Some(session) = &session {
                builder = builder.sanitizer(Arc::clone(session));
            }
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                builder.run(move |comm| g(comm));
            }));
            if let Err(payload) = outcome {
                return Some(ExploreFailure {
                    seed,
                    trace: cell.take().unwrap_or_default(),
                    message: panic_text(&*payload),
                });
            }
            if let Some(session) = &session {
                let findings = session.findings();
                if !findings.is_empty() {
                    let message = findings
                        .iter()
                        .map(|f| f.to_string())
                        .collect::<Vec<_>>()
                        .join("\n");
                    return Some(ExploreFailure {
                        seed,
                        trace: cell.take().unwrap_or_default(),
                        message,
                    });
                }
            }
        }
        None
    }
}

/// Best-effort extraction of a panic payload's message (the payload a
/// `catch_unwind` around a world returns).
pub fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_json_round_trip() {
        let t = Trace {
            seed: Some(42),
            events: vec![
                Event::Run { slot: 3 },
                Event::Send {
                    from: 0,
                    to: 1,
                    tag: Tag::collective(crate::CollectiveKind::Bcast, 7).0,
                },
                Event::Match {
                    slot: 1,
                    src: 0,
                    tag: Tag::user(9).0,
                },
                Event::Interactive {
                    slot: 0,
                    client: 17,
                    step: 4,
                    digest: 0xdead_beef_cafe_f00d,
                },
            ],
        };
        let text = t.to_json();
        assert_eq!(Trace::from_json(&text).expect("parse"), t);
        // High tag bits survive the hex round trip exactly.
        let Event::Send { tag, .. } = &t.events[1] else {
            unreachable!()
        };
        assert!(tag & (1 << 63) != 0);
        // Interactive digests are full-width u64s and round trip too.
        let Event::Interactive { digest, .. } = &t.events[3] else {
            unreachable!()
        };
        assert!(digest & (1 << 63) != 0);
    }

    #[test]
    fn seedless_trace_round_trips() {
        let t = Trace {
            seed: None,
            events: vec![Event::Run { slot: 0 }],
        };
        assert_eq!(Trace::from_json(&t.to_json()).expect("parse"), t);
    }

    #[test]
    fn trace_rejects_garbage() {
        assert!(Trace::from_json("{}").is_err());
        assert!(Trace::from_json(r#"{"seed":1,"events":[["x",0]]}"#).is_err());
        assert!(Trace::from_json(r#"{"seed":1,"events":[["s",0,1,"zz"]]}"#).is_err());
        assert!(Trace::from_json(r#"{"seed":1,"events":[["q",0,1]]}"#).is_err());
        assert!(Trace::from_json(r#"{"seed":1,"events":[["q",0,1,2,"gg"]]}"#).is_err());
    }
}
