//! Test-only fault injection for the transport layer.
//!
//! A [`FaultHandle`] is a cloneable, thread-safe switchboard of link
//! faults. When installed on a world via
//! [`crate::WorldBuilder::fault_handle`], every point-to-point send — and
//! therefore every collective, which is built on point-to-point — consults
//! it before delivering. Rules are keyed by *world* rank (slot), so they
//! keep meaning across [`crate::Comm::split`] sub-communicators.
//!
//! This exists to let tests drive the failure modes the fail-fast layer
//! must diagnose (dead writer, partitioned link, slow link) without
//! touching production code paths: with no handle installed the send path
//! is unchanged.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

#[derive(Clone, Debug, PartialEq)]
enum Rule {
    /// Silently discard messages from `from` to `to`.
    DropLink { from: usize, to: usize },
    /// Deliver messages from `from` to `to` after sleeping `delay`.
    DelayLink {
        from: usize,
        to: usize,
        delay: Duration,
    },
    /// Discard every message to or from `rank` (full disconnect).
    Isolate { rank: usize },
}

/// What the transport should do with a message, per the active rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FaultAction {
    Deliver,
    Drop,
    Delay(Duration),
}

/// Shared handle controlling injected transport faults.
///
/// Clone it freely: all clones share the same rule set, so a test can keep
/// one clone and hand another to [`crate::WorldBuilder::fault_handle`],
/// then flip links mid-run from inside a rank closure.
#[derive(Clone, Default)]
pub struct FaultHandle {
    inner: Arc<FaultInner>,
}

#[derive(Default)]
struct FaultInner {
    rules: Mutex<Vec<Rule>>,
    dropped: AtomicU64,
}

impl FaultHandle {
    /// A handle with no active faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Silently drop all messages sent from world rank `from` to `to`
    /// (one direction only).
    pub fn drop_link(&self, from: usize, to: usize) {
        self.push(Rule::DropLink { from, to });
    }

    /// Delay all messages sent from world rank `from` to `to` by `delay`.
    pub fn delay_link(&self, from: usize, to: usize, delay: Duration) {
        self.push(Rule::DelayLink { from, to, delay });
    }

    /// Disconnect world rank `rank`: every message to or from it is
    /// dropped, as if its network link died.
    pub fn isolate(&self, rank: usize) {
        self.push(Rule::Isolate { rank });
    }

    /// Remove every active fault rule.
    pub fn heal(&self) {
        self.inner.rules.lock().clear();
    }

    /// Number of messages dropped by injected faults so far.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Would a message from world slot `from` to `to` be discarded
    /// under the active rules? Liveness oracle for layers *above* the
    /// transport (e.g. steering clients that never touch a `Comm`): a
    /// severed link means the peer is unreachable and waiting on it is
    /// pointless, so fail-fast paths can degrade immediately instead of
    /// burning a deadline.
    pub fn is_severed(&self, from: usize, to: usize) -> bool {
        matches!(self.action(from, to), FaultAction::Drop)
    }

    fn push(&self, rule: Rule) {
        self.inner.rules.lock().push(rule);
    }

    /// Decide the fate of a message from world slot `from` to `to`.
    /// Drop wins over delay; delays accumulate.
    pub(crate) fn action(&self, from: usize, to: usize) -> FaultAction {
        let rules = self.inner.rules.lock();
        if rules.is_empty() {
            return FaultAction::Deliver;
        }
        let mut delay = Duration::ZERO;
        for rule in rules.iter() {
            match rule {
                Rule::DropLink { from: f, to: t } if *f == from && *t == to => {
                    return FaultAction::Drop;
                }
                Rule::Isolate { rank } if *rank == from || *rank == to => {
                    return FaultAction::Drop;
                }
                Rule::DelayLink {
                    from: f,
                    to: t,
                    delay: d,
                } if *f == from && *t == to => {
                    delay += *d;
                }
                _ => {}
            }
        }
        if delay.is_zero() {
            FaultAction::Deliver
        } else {
            FaultAction::Delay(delay)
        }
    }

    /// Record a message discarded by [`FaultAction::Drop`].
    pub(crate) fn note_dropped(&self) {
        self.inner.dropped.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_rules_deliver() {
        let f = FaultHandle::new();
        assert_eq!(f.action(0, 1), FaultAction::Deliver);
    }

    #[test]
    fn drop_link_is_directional() {
        let f = FaultHandle::new();
        f.drop_link(0, 1);
        assert_eq!(f.action(0, 1), FaultAction::Drop);
        assert_eq!(f.action(1, 0), FaultAction::Deliver);
    }

    #[test]
    fn isolate_cuts_both_directions() {
        let f = FaultHandle::new();
        f.isolate(2);
        assert_eq!(f.action(2, 0), FaultAction::Drop);
        assert_eq!(f.action(1, 2), FaultAction::Drop);
        assert_eq!(f.action(0, 1), FaultAction::Deliver);
    }

    #[test]
    fn delays_accumulate_and_heal_clears() {
        let f = FaultHandle::new();
        f.delay_link(0, 1, Duration::from_millis(10));
        f.delay_link(0, 1, Duration::from_millis(5));
        assert_eq!(
            f.action(0, 1),
            FaultAction::Delay(Duration::from_millis(15))
        );
        f.heal();
        assert_eq!(f.action(0, 1), FaultAction::Deliver);
    }

    #[test]
    fn severed_mirrors_drop_rules() {
        let f = FaultHandle::new();
        assert!(!f.is_severed(0, 1));
        f.drop_link(0, 1);
        assert!(f.is_severed(0, 1));
        assert!(!f.is_severed(1, 0));
        f.heal();
        f.delay_link(0, 1, Duration::from_millis(1));
        assert!(!f.is_severed(0, 1), "delayed links are alive");
    }

    #[test]
    fn clones_share_rules() {
        let a = FaultHandle::new();
        let b = a.clone();
        a.drop_link(3, 4);
        assert_eq!(b.action(3, 4), FaultAction::Drop);
        b.note_dropped();
        assert_eq!(a.dropped(), 1);
    }
}
