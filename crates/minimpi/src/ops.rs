//! Reduction helpers mirroring MPI's `MINLOC`/`MAXLOC` built-ins, used by
//! analyses that must locate extrema (e.g. the autocorrelation top-k
//! reduction identifies the grid cells holding the strongest signal).

/// A value paired with the rank (or index) that produced it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MinLoc<T> {
    /// The candidate value.
    pub value: T,
    /// Owning rank or global index.
    pub loc: usize,
}

/// See [`MinLoc`]; keeps the maximum instead.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MaxLoc<T> {
    /// The candidate value.
    pub value: T,
    /// Owning rank or global index.
    pub loc: usize,
}

/// Combine two [`MinLoc`]s, keeping the smaller value (ties favor the
/// lower location, MPI's documented tie-break).
pub fn minloc<T: PartialOrd>(a: MinLoc<T>, b: MinLoc<T>) -> MinLoc<T> {
    if b.value < a.value || (b.value == a.value && b.loc < a.loc) {
        b
    } else {
        a
    }
}

/// Combine two [`MaxLoc`]s, keeping the larger value (ties favor the lower
/// location).
pub fn maxloc<T: PartialOrd>(a: MaxLoc<T>, b: MaxLoc<T>) -> MaxLoc<T> {
    if b.value > a.value || (b.value == a.value && b.loc < a.loc) {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;

    #[test]
    fn minloc_prefers_smaller_value_then_lower_loc() {
        let a = MinLoc { value: 3.0, loc: 1 };
        let b = MinLoc { value: 2.0, loc: 5 };
        assert_eq!(minloc(a, b), b);
        let c = MinLoc { value: 2.0, loc: 2 };
        assert_eq!(minloc(b, c), c);
    }

    #[test]
    fn maxloc_prefers_larger_value_then_lower_loc() {
        let a = MaxLoc { value: 3.0, loc: 9 };
        let b = MaxLoc { value: 3.0, loc: 4 };
        assert_eq!(maxloc(a, b), b);
    }

    #[test]
    fn allreduce_maxloc_finds_owner() {
        World::run(6, |comm| {
            // Rank 4 holds the peak.
            let v = if comm.rank() == 4 {
                100.0
            } else {
                comm.rank() as f64
            };
            let got = comm.allreduce(
                MaxLoc {
                    value: v,
                    loc: comm.rank(),
                },
                maxloc,
            );
            assert_eq!(got.loc, 4);
            assert_eq!(got.value, 100.0);
        });
    }
}
