//! # minimpi — a thread-backed message-passing substrate
//!
//! The SC16 SENSEI paper runs everything on MPI. Rust has no mature MPI
//! ecosystem, so this crate provides the same SPMD programming model with
//! ranks backed by OS threads and messages moved over lock-free channels:
//!
//! * a [`World`] launches `P` ranks, each receiving a [`Comm`];
//! * tagged, typed point-to-point [`Comm::send`] / [`Comm::recv`] with
//!   per-`(source, tag)` FIFO matching, like MPI's matching rules;
//! * the usual collectives — [`Comm::barrier`], [`Comm::bcast`],
//!   [`Comm::reduce`], [`Comm::allreduce`], [`Comm::gather`],
//!   [`Comm::allgather`], [`Comm::scatter`], [`Comm::alltoall`],
//!   [`Comm::scan`] — implemented *on top of* point-to-point with the
//!   classic algorithms (binomial trees, recursive doubling, ring), so
//!   their communication structure mirrors a real MPI implementation;
//! * communicator splitting ([`Comm::split`]) for subgroups, used by the
//!   staging infrastructures to carve simulation and endpoint partitions
//!   out of the world.
//!
//! Messages transfer ownership (a `Vec<f64>` moves without copying its
//! heap buffer), which is the moral equivalent of zero-copy shared-memory
//! MPI transports and keeps the substrate honest for the paper's overhead
//! measurements.
//!
//! ```
//! use minimpi::World;
//!
//! let sums = World::run(4, |comm| {
//!     let mine = (comm.rank() + 1) as u64;
//!     comm.allreduce_scalar(mine, |a, b| a + b)
//! });
//! assert_eq!(sums, vec![10, 10, 10, 10]);
//! ```

mod comm;
mod envelope;
mod fault;
mod monitor;
mod ops;
mod world;

pub mod collectives;
pub mod dpor;
pub mod sched;

pub use comm::Comm;
pub use dpor::{CheckFailure, CheckReport, CheckStats, Checker};
pub use envelope::{CollectiveKind, Envelope, Tag, ANY_SOURCE};
pub use fault::FaultHandle;
pub use ops::{maxloc, minloc, MaxLoc, MinLoc};
pub use sched::{
    Event, ExploreBudget, ExploreFailure, Explorer, Guide, LivenessSpec, SchedPolicy, Trace,
    TraceCell,
};
pub use world::{World, WorldBuilder};

/// Crate-level result alias (operations that can fail on malformed use).
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by communicator operations.
///
/// Most misuse (type mismatches, rank out of range) panics — programs here
/// are deterministic SPMD codes where such conditions are bugs — but a few
/// operations surface recoverable conditions.
#[derive(Debug)]
pub enum Error {
    /// The destination or source rank does not exist in the communicator.
    RankOutOfRange { rank: usize, size: usize },
    /// A communicator split produced an empty group for this rank.
    EmptyGroup,
    /// The remote end of a channel disconnected (peer rank panicked).
    Disconnected,
    /// A [`Comm::recv_deadline`] gave up waiting. Carries a rendering of
    /// the rank's unmatched pending queue for diagnosis.
    DeadlineExceeded {
        /// Awaited source rank ([`ANY_SOURCE`] = any).
        src: usize,
        /// Awaited tag, human-readable.
        tag: String,
        /// How long the receive waited before giving up.
        waited: std::time::Duration,
        /// Rendered snapshot of unmatched `(src, tag)` pairs.
        pending: String,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::RankOutOfRange { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            Error::EmptyGroup => write!(f, "communicator split produced an empty group"),
            Error::Disconnected => write!(f, "peer rank disconnected (panicked?)"),
            Error::DeadlineExceeded {
                src,
                tag,
                waited,
                pending,
            } => {
                if *src == ANY_SOURCE {
                    write!(
                        f,
                        "recv deadline exceeded after {waited:?} waiting for tag {tag} \
                         from any source; pending: {pending}"
                    )
                } else {
                    write!(
                        f,
                        "recv deadline exceeded after {waited:?} waiting for tag {tag} \
                         from rank {src}; pending: {pending}"
                    )
                }
            }
        }
    }
}

impl std::error::Error for Error {}
