//! Systematic model checking: DPOR schedule exploration, liveness
//! analysis, and delta-debugged failure traces.
//!
//! Where [`crate::Explorer`] samples interleavings blindly (independent
//! seeds), [`Checker`] walks the schedule tree *systematically*. Every
//! guided run records its decisions ([`crate::sched::DecisionLog`]);
//! after a clean run the checker mines the recording for *races* —
//! pairs of dependent events from different ranks whose vector clocks
//! (recomputed with the sanitizer's [`sanitizer::VectorClock`], the
//! same happens-before engine the race detector uses) are concurrent —
//! and queues a branch that reorders each race at the run decision
//! that scheduled it. `ANY_SOURCE` match decisions branch on every
//! candidate source, since those are the genuinely nondeterministic
//! deliveries. Equivalent interleavings are pruned twice over:
//! independent (never-racing) alternatives are simply not queued, and
//! *sleep sets* inherited along the tree suppress re-exploring a
//! sibling's schedule until a dependent action wakes it.
//!
//! Each run executes under [`SchedPolicy::Guided`]: a forced decision
//! prefix replays the branch point, then a deterministic fair
//! round-robin default takes over — fair, so a liveness finding is the
//! program's bug, not scheduler-induced starvation. A
//! [`crate::sched::LivenessSpec`] bounds every run (decision budget,
//! spin limits, starvation window), turning livelocks and starvation
//! into deterministic, replayable aborts instead of hangs.
//!
//! A failing schedule is passed through a delta-debugging (ddmin)
//! shrinker that minimizes the forced-choice prefix while preserving
//! the failure signature, then the shrunk run's delivery trace is
//! re-executed under [`SchedPolicy::Replay`] to prove it reproduces
//! the failure with a bitwise-identical event stream.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use sanitizer::VectorClock;

use crate::sched::{
    panic_text, DecisionKind, DecisionRecord, Event, Guide, LivenessSpec, SchedPolicy, Trace,
    TraceCell,
};

/// Exploration statistics for one [`Checker::run`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Schedules actually executed.
    pub schedules_explored: u64,
    /// Branch alternatives suppressed by a sleep set.
    pub pruned_by_sleep_set: u64,
    /// Co-enabled alternatives never queued because no race with the
    /// chosen action was observed (the DPOR reduction itself).
    pub pruned_independent: u64,
    /// Deepest forced-choice prefix queued for exploration.
    pub max_backtrack_depth: u64,
    /// Runs whose forced prefix turned out infeasible (a forced choice
    /// was not enabled when its turn came).
    pub divergent_runs: u64,
    /// Extra runs spent minimizing and re-verifying a failure.
    pub shrink_runs: u64,
    /// The schedule or wall budget ran out before the tree was done.
    pub budget_exhausted: bool,
}

impl CheckStats {
    /// Fraction of considered branch alternatives that were pruned
    /// (sleep set + independence) instead of executed, in [0, 1].
    pub fn pruning_ratio(&self) -> f64 {
        let pruned = self.pruned_by_sleep_set + self.pruned_independent;
        let considered = pruned + self.schedules_explored.saturating_sub(1);
        if considered == 0 {
            0.0
        } else {
            pruned as f64 / considered as f64
        }
    }
}

/// One failing schedule, minimized and replay-verified.
#[derive(Clone, Debug)]
pub struct CheckFailure {
    /// The failure text: a panic message (assert, deadlock report,
    /// liveness violation) or the sanitizer findings of the run.
    pub message: String,
    /// Minimized forced-choice prefix that reproduces the failure
    /// under [`SchedPolicy::Guided`].
    pub prefix: Vec<usize>,
    /// The minimized run's full delivery trace; replay it with
    /// [`SchedPolicy::Replay`] (same world configuration and
    /// [`LivenessSpec`]) to reproduce the failure bitwise.
    pub trace: Trace,
    /// Forced choices before minimization.
    pub original_choices: usize,
    /// The shrunk trace was re-executed under [`SchedPolicy::Replay`]
    /// and reproduced the failure with an identical event stream.
    pub replayed_bitwise: bool,
}

/// The result of one systematic exploration.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Exploration statistics (also exported as probe gauges when a
    /// probe is attached).
    pub stats: CheckStats,
    /// The first failure found, minimized — `None` when every explored
    /// schedule passed.
    pub failure: Option<CheckFailure>,
}

/// Systematic DPOR model checker over the deterministic scheduler's
/// decision points. See the module docs for the algorithm.
pub struct Checker {
    max_schedules: usize,
    max_shrink_runs: usize,
    liveness: LivenessSpec,
    sanitize: bool,
    exhaustive: bool,
    wall_cap: Option<Duration>,
    probe: probe::Probe,
}

impl Default for Checker {
    fn default() -> Self {
        Checker::new()
    }
}

/// Everything one guided (or replayed) run produced.
struct RunOutcome {
    records: Vec<DecisionRecord>,
    divergences: usize,
    trace: Trace,
    failure: Option<String>,
}

/// A queued branch of the schedule tree: force these choices, then let
/// the default policy finish the run.
struct Branch {
    prefix: Vec<usize>,
    sleep: BTreeSet<usize>,
}

/// What a rank does next, for the dependence relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Action {
    /// A delivery into `to`'s queue under `tag`.
    Send { to: usize, tag: u64 },
    /// A local visible event (`Match` resolution, interactive apply).
    Local,
}

impl Checker {
    /// A checker with the default budgets: 256 schedules, 256 shrink
    /// runs, the default [`LivenessSpec`], DPOR reduction on.
    pub fn new() -> Self {
        Checker {
            max_schedules: 256,
            max_shrink_runs: 256,
            liveness: LivenessSpec::default(),
            sanitize: false,
            exhaustive: false,
            wall_cap: None,
            probe: probe::Probe::default(),
        }
    }

    /// Cap the number of schedules executed (deterministic budget).
    pub fn max_schedules(mut self, n: usize) -> Self {
        self.max_schedules = n;
        self
    }

    /// Cap the extra runs the ddmin shrinker may spend (default 256).
    pub fn max_shrink_runs(mut self, n: usize) -> Self {
        self.max_shrink_runs = n;
        self
    }

    /// Replace the liveness thresholds applied to every run.
    pub fn liveness(mut self, spec: LivenessSpec) -> Self {
        self.liveness = spec;
        self
    }

    /// Install a fresh `sanitizer::Mode::Collect` session on every run
    /// and promote its findings (races, leaks, unclosed obligations)
    /// to failures, exactly like [`crate::Explorer::sanitize`].
    pub fn sanitize(mut self) -> Self {
        self.sanitize = true;
        self
    }

    /// Disable the DPOR reduction: branch on *every* enabled
    /// alternative at every decision, no sleep sets. The exhaustive
    /// baseline the reduction is measured against.
    pub fn exhaustive(mut self) -> Self {
        self.exhaustive = true;
        self
    }

    /// Optional wall-clock cap on the whole exploration (checked
    /// between runs; the budget that keeps CI bounded even if the
    /// schedule budget is generous).
    pub fn wall_cap(mut self, cap: Duration) -> Self {
        self.wall_cap = Some(cap);
        self
    }

    /// Export exploration stats as gauges on `probe` (keys
    /// `modelcheck/schedules`, `modelcheck/pruned_sleep`,
    /// `modelcheck/pruned_independent`, `modelcheck/backtrack_depth_max`,
    /// `modelcheck/pruned_permille`).
    pub fn probe(mut self, probe: probe::Probe) -> Self {
        self.probe = probe;
        self
    }

    /// Systematically explore schedules of `f` on a world of `size`
    /// ranks. Stops at the first failing schedule (minimized and
    /// replay-verified) or when the tree / budget is done.
    pub fn run<F>(&self, size: usize, f: F) -> CheckReport
    where
        F: Fn(&crate::Comm) + Send + Sync + 'static,
    {
        self.run_with(size, |b| b, f)
    }

    /// Like [`Checker::run`], with a hook to configure each world
    /// (fault handles, watchdog tweaks, …). The hook runs once per
    /// explored schedule.
    pub fn run_with<C, F>(&self, size: usize, configure: C, f: F) -> CheckReport
    where
        C: Fn(crate::WorldBuilder) -> crate::WorldBuilder,
        F: Fn(&crate::Comm) + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut stats = CheckStats::default();
        let t0 = probe::time::Wall::now();
        let mut stack = vec![Branch {
            prefix: Vec::new(),
            sleep: BTreeSet::new(),
        }];
        let mut failure = None;
        while let Some(branch) = stack.pop() {
            if stats.schedules_explored >= self.max_schedules as u64 {
                stats.budget_exhausted = true;
                break;
            }
            if let Some(cap) = self.wall_cap {
                if stats.schedules_explored > 0 && t0.elapsed() >= cap {
                    stats.budget_exhausted = true;
                    break;
                }
            }
            let run = self.run_guided(size, &configure, &f, &branch.prefix);
            stats.schedules_explored += 1;
            if let Some(message) = run.failure.clone() {
                failure =
                    Some(self.shrink_and_verify(size, &configure, &f, run, message, &mut stats));
                break;
            }
            if run.divergences > 0 {
                stats.divergent_runs += 1;
                continue;
            }
            self.expand(size, &branch, &run, &mut stack, &mut stats);
        }
        self.export_stats(&stats);
        CheckReport { stats, failure }
    }

    /// Execute one run under a forced-choice prefix.
    fn run_guided<C, F>(
        &self,
        size: usize,
        configure: &C,
        f: &Arc<F>,
        prefix: &[usize],
    ) -> RunOutcome
    where
        C: Fn(crate::WorldBuilder) -> crate::WorldBuilder,
        F: Fn(&crate::Comm) + Send + Sync + 'static,
    {
        let guide = Guide::new(prefix.to_vec());
        let log = guide.log();
        let outcome = self.launch(size, configure, f, SchedPolicy::Guided(guide));
        let (records, divergences) = log.take();
        RunOutcome {
            records,
            divergences,
            trace: outcome.trace,
            failure: outcome.failure,
        }
    }

    /// Execute one run under a policy, capturing trace + failure text.
    fn launch<C, F>(
        &self,
        size: usize,
        configure: &C,
        f: &Arc<F>,
        policy: SchedPolicy,
    ) -> RunOutcome
    where
        C: Fn(crate::WorldBuilder) -> crate::WorldBuilder,
        F: Fn(&crate::Comm) + Send + Sync + 'static,
    {
        let cell = TraceCell::new();
        // Collect mode: findings must not abort the run mid-way; they
        // are promoted to a failure after a clean exit.
        let session = self
            .sanitize
            .then(|| sanitizer::Session::new(size, sanitizer::Mode::Collect));
        let mut builder = configure(crate::WorldBuilder::new(size))
            .sched(policy)
            .trace_cell(&cell)
            .liveness(self.liveness);
        if let Some(session) = &session {
            builder = builder.sanitizer(Arc::clone(session));
        }
        let g = Arc::clone(f);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            builder.run(move |comm| g(comm));
        }));
        let failure = match outcome {
            Err(payload) => Some(panic_text(&*payload)),
            Ok(_) => session.as_ref().and_then(|s| {
                let findings = s.findings();
                (!findings.is_empty()).then(|| {
                    findings
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("\n")
                })
            }),
        };
        RunOutcome {
            records: Vec::new(),
            divergences: 0,
            trace: cell.take().unwrap_or_default(),
            failure,
        }
    }

    /// Mine a clean run for branches: race-derived backtrack points at
    /// run decisions, every candidate source at match decisions.
    fn expand(
        &self,
        size: usize,
        branch: &Branch,
        run: &RunOutcome,
        stack: &mut Vec<Branch>,
        stats: &mut CheckStats,
    ) {
        let records = &run.records;
        let events = &run.trace.events;
        let choices: Vec<usize> = records.iter().map(|r| r.chosen).collect();
        let owned_from = branch.prefix.len();

        // Per-event actor + action summary (None for Run events), and
        // the actor's vector clock right after the event — recomputed
        // from the trace with the sanitizer's clock type. Delivery is
        // eager in this runtime (the queue push happens inside send),
        // so the destination merges the sender's clock at the Send.
        let mut clocks: Vec<VectorClock> = (0..size).map(|_| VectorClock::new(size)).collect();
        let mut summaries: Vec<Option<(usize, Action, VectorClock)>> =
            Vec::with_capacity(events.len());
        for event in events {
            let summary = match event {
                Event::Run { .. } => None,
                Event::Send { from, to, tag } => {
                    clocks[*from].tick(*from);
                    let snapshot = clocks[*from].clone();
                    clocks[*to].merge(&snapshot);
                    Some((*from, Action::Send { to: *to, tag: *tag }, snapshot))
                }
                Event::Match { slot, .. } | Event::Interactive { slot, .. } => {
                    clocks[*slot].tick(*slot);
                    Some((*slot, Action::Local, clocks[*slot].clone()))
                }
            };
            summaries.push(summary);
        }

        // Backtrack sets: for each race — dependent events from two
        // ranks with concurrent clocks — request the later actor as an
        // alternative at the run decision that scheduled the earlier
        // event. Exhaustive mode instead requests everything enabled.
        let mut alternatives: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); records.len()];
        if self.exhaustive {
            for (j, rec) in records.iter().enumerate() {
                if matches!(rec.kind, DecisionKind::Run) {
                    alternatives[j].extend(rec.enabled.iter().filter(|&&b| b != rec.chosen));
                }
            }
        } else {
            for p in 0..events.len() {
                let Some((actor_p, action_p, clock_p)) = &summaries[p] else {
                    continue;
                };
                for summary_q in summaries.iter().skip(p + 1) {
                    let Some((actor_q, action_q, clock_q)) = summary_q else {
                        continue;
                    };
                    if actor_p == actor_q
                        || !dependent(*actor_p, *action_p, *actor_q, *action_q)
                        || !clock_p.concurrent_with(clock_q)
                    {
                        continue;
                    }
                    // The run decision that scheduled event p: the
                    // latest run decision at or before p choosing
                    // actor_p. Try actor_q there instead.
                    if let Some(j) = scheduling_decision(records, p, *actor_p) {
                        if records[j].enabled.contains(actor_q) {
                            alternatives[j].insert(*actor_q);
                        } else {
                            // Classic DPOR fallback: the racing actor
                            // was not enabled there — try everything
                            // that was.
                            alternatives[j].extend(
                                records[j]
                                    .enabled
                                    .iter()
                                    .filter(|&&b| b != records[j].chosen),
                            );
                        }
                    }
                }
            }
        }

        // Walk the owned suffix with the inherited sleep set: queue
        // the requested alternatives, waking sleepers when a dependent
        // action executes.
        let mut sleep = branch.sleep.clone();
        for j in owned_from..records.len() {
            // Wake-ups from events since the previous decision.
            let lo = records[j.saturating_sub(1)]
                .trace_pos
                .min(records[j].trace_pos);
            let hi = records[j].trace_pos;
            let from = if j == owned_from { 0 } else { lo };
            for summary in summaries[from..hi].iter().flatten() {
                let (actor, action, _) = summary;
                sleep.retain(|b| {
                    b != actor
                        && match next_action(&summaries, hi, *b) {
                            Some(nb) => !dependent(*actor, *action, *b, nb),
                            None => false,
                        }
                });
            }
            let rec = &records[j];
            match rec.kind {
                DecisionKind::Run => {
                    let mut explored_here: Vec<usize> = Vec::new();
                    for &alt in &alternatives[j] {
                        if sleep.contains(&alt) {
                            stats.pruned_by_sleep_set += 1;
                            continue;
                        }
                        let mut prefix = choices[..j].to_vec();
                        prefix.push(alt);
                        stats.max_backtrack_depth =
                            stats.max_backtrack_depth.max(prefix.len() as u64);
                        // Sleep-set inheritance: the sibling explored
                        // from this node keeps the already-taken
                        // choices asleep until something dependent
                        // wakes them.
                        let mut child_sleep = sleep.clone();
                        child_sleep.insert(rec.chosen);
                        child_sleep.extend(explored_here.iter().copied());
                        stack.push(Branch {
                            prefix,
                            sleep: child_sleep,
                        });
                        explored_here.push(alt);
                    }
                }
                DecisionKind::Match { .. } => {
                    for &src in rec.enabled.iter().filter(|&&s| s != rec.chosen) {
                        let mut prefix = choices[..j].to_vec();
                        prefix.push(src);
                        stats.max_backtrack_depth =
                            stats.max_backtrack_depth.max(prefix.len() as u64);
                        stack.push(Branch {
                            prefix,
                            sleep: sleep.clone(),
                        });
                    }
                }
            }
        }
        // Account the reduction: co-enabled run alternatives that were
        // never queued because no race demanded them.
        if !self.exhaustive {
            for (j, rec) in records.iter().enumerate().skip(owned_from) {
                if matches!(rec.kind, DecisionKind::Run) {
                    let co_enabled = rec.enabled.len().saturating_sub(1) as u64;
                    stats.pruned_independent +=
                        co_enabled.saturating_sub(alternatives[j].len() as u64);
                }
            }
        }
    }

    /// ddmin the failing run's forced choices down to a minimal prefix
    /// with the same failure signature, then replay the shrunk trace
    /// bitwise under [`SchedPolicy::Replay`].
    fn shrink_and_verify<C, F>(
        &self,
        size: usize,
        configure: &C,
        f: &Arc<F>,
        failing: RunOutcome,
        message: String,
        stats: &mut CheckStats,
    ) -> CheckFailure
    where
        C: Fn(crate::WorldBuilder) -> crate::WorldBuilder,
        F: Fn(&crate::Comm) + Send + Sync + 'static,
    {
        let signature = failure_signature(&message);
        let full: Vec<usize> = failing.records.iter().map(|r| r.chosen).collect();
        let original_choices = full.len();
        let mut best = failing;
        let mut best_message = message;
        let mut current = full;
        let mut budget = self.max_shrink_runs;

        let attempt = |prefix: &[usize],
                       budget: &mut usize,
                       stats: &mut CheckStats|
         -> Option<(RunOutcome, String)> {
            if *budget == 0 {
                return None;
            }
            *budget -= 1;
            stats.shrink_runs += 1;
            let out = self.run_guided(size, configure, f, prefix);
            match &out.failure {
                Some(m) if failure_signature(m) == signature => {
                    let m = m.clone();
                    Some((out, m))
                }
                _ => None,
            }
        };

        // Fast path: most protocol bugs reproduce under the default
        // policy with no forcing at all.
        if let Some((out, m)) = attempt(&[], &mut budget, stats) {
            best = out;
            best_message = m;
            current = Vec::new();
        } else {
            // ddmin proper: remove chunks at increasing granularity.
            let mut n = 2usize;
            while current.len() >= 2 && budget > 0 {
                let chunk = current.len().div_ceil(n);
                let mut reduced = false;
                let mut start = 0usize;
                while start < current.len() {
                    let end = (start + chunk).min(current.len());
                    let mut candidate = current[..start].to_vec();
                    candidate.extend_from_slice(&current[end..]);
                    if let Some((out, m)) = attempt(&candidate, &mut budget, stats) {
                        best = out;
                        best_message = m;
                        current = candidate;
                        n = n.saturating_sub(1).max(2);
                        reduced = true;
                        break;
                    }
                    start = end;
                }
                if !reduced {
                    if chunk <= 1 {
                        break;
                    }
                    n = (n * 2).min(current.len().max(2));
                }
            }
            // Final polish: drop single choices left to right.
            let mut i = 0usize;
            while i < current.len() && budget > 0 {
                let mut candidate = current.clone();
                candidate.remove(i);
                if let Some((out, m)) = attempt(&candidate, &mut budget, stats) {
                    best = out;
                    best_message = m;
                    current = candidate;
                } else {
                    i += 1;
                }
            }
        }

        // Bitwise replay verification of the shrunk trace.
        let min_trace = best.trace.clone();
        let replay = self.launch(size, configure, f, SchedPolicy::Replay(min_trace.clone()));
        stats.shrink_runs += 1;
        let replayed_bitwise = match &replay.failure {
            Some(m) => failure_signature(m) == signature && replay.trace.events == min_trace.events,
            None => false,
        };
        CheckFailure {
            message: best_message,
            prefix: current,
            trace: min_trace,
            original_choices,
            replayed_bitwise,
        }
    }

    fn export_stats(&self, stats: &CheckStats) {
        let p = &self.probe;
        p.gauge_max("modelcheck/schedules", stats.schedules_explored);
        p.gauge_max("modelcheck/pruned_sleep", stats.pruned_by_sleep_set);
        p.gauge_max("modelcheck/pruned_independent", stats.pruned_independent);
        p.gauge_max("modelcheck/backtrack_depth_max", stats.max_backtrack_depth);
        p.gauge_max(
            "modelcheck/pruned_permille",
            (stats.pruning_ratio() * 1000.0) as u64,
        );
    }
}

/// Are two actions by different ranks dependent (their order can
/// change the outcome)? Sends into the same queue under the same tag
/// conflict; a send targeting the other actor conflicts with whatever
/// that actor does next; everything else commutes.
fn dependent(actor_a: usize, a: Action, actor_b: usize, b: Action) -> bool {
    match (a, b) {
        (Action::Send { to: x, tag: t }, Action::Send { to: y, tag: u }) => {
            (x == y && t == u) || x == actor_b || y == actor_a
        }
        (Action::Send { to: x, .. }, Action::Local) => x == actor_b,
        (Action::Local, Action::Send { to: y, .. }) => y == actor_a,
        (Action::Local, Action::Local) => false,
    }
}

/// The next action rank `slot` takes at or after trace position `pos`.
fn next_action(
    summaries: &[Option<(usize, Action, VectorClock)>],
    pos: usize,
    slot: usize,
) -> Option<Action> {
    summaries[pos.min(summaries.len())..]
        .iter()
        .flatten()
        .find(|(actor, _, _)| *actor == slot)
        .map(|(_, action, _)| *action)
}

/// The latest run decision at or before trace position `p` that chose
/// `actor` (the decision that scheduled the segment containing `p`).
fn scheduling_decision(records: &[DecisionRecord], p: usize, actor: usize) -> Option<usize> {
    records
        .iter()
        .enumerate()
        .rev()
        .find(|(_, r)| matches!(r.kind, DecisionKind::Run) && r.trace_pos <= p && r.chosen == actor)
        .map(|(j, _)| j)
}

/// Normalize a failure message into a stable signature so the shrinker
/// and replay verifier can match failures without comparing volatile
/// detail (counts, per-rank dumps).
pub(crate) fn failure_signature(message: &str) -> String {
    const MARKERS: &[&str] = &[
        "deterministic deadlock detected",
        "liveness violation",
        "replay diverged",
        "sanitizer[",
    ];
    for marker in MARKERS {
        if message.contains(marker) {
            // Keep the headline class plus the first line's shape.
            let first = message.lines().next().unwrap_or(message);
            let kind = first
                .split(|c: char| c.is_ascii_digit())
                .next()
                .unwrap_or(first);
            return format!("{marker}:{kind}");
        }
    }
    message.lines().next().unwrap_or(message).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dependence_relation() {
        let send_0_to_2 = Action::Send { to: 2, tag: 7 };
        let send_1_to_2 = Action::Send { to: 2, tag: 7 };
        let send_1_to_2_other_tag = Action::Send { to: 2, tag: 8 };
        // Same queue, same tag: conflict.
        assert!(dependent(0, send_0_to_2, 1, send_1_to_2));
        // Same queue, different tag: commute.
        assert!(!dependent(0, send_0_to_2, 1, send_1_to_2_other_tag));
        // Send targeting the other actor: conflict.
        assert!(dependent(
            0,
            Action::Send { to: 1, tag: 3 },
            1,
            Action::Local
        ));
        // Locals commute.
        assert!(!dependent(0, Action::Local, 1, Action::Local));
    }

    #[test]
    fn signatures_collapse_volatile_detail() {
        let a = failure_signature(
            "minimpi sched: liveness violation — starvation: world rank(s) [1] made no \
             progress for 200 scheduling points while other ranks kept running (budget 600 \
             decisions)\n  world rank 0: runnable",
        );
        let b = failure_signature(
            "minimpi sched: liveness violation — starvation: world rank(s) [1] made no \
             progress for 200 scheduling points while other ranks kept running (budget 600 \
             decisions)\n  world rank 0: blocked",
        );
        assert_eq!(a, b);
        let c = failure_signature("assertion failed: results arrived in rank order");
        assert_ne!(a, c);
    }
}
