//! Integration tests for the deterministic scheduler: seed
//! reproducibility, virtual-time deadlines, exact deadlock detection,
//! interleaving exploration, and trace replay.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use minimpi::{Explorer, FaultHandle, SchedPolicy, Trace, TraceCell, World, WorldBuilder};

/// Run a small mixed workload (p2p + ANY_SOURCE + collectives) under a
/// seed and return (per-rank results, delivery trace).
fn seeded_workload(seed: u64, size: usize) -> (Vec<u64>, Trace) {
    let cell = TraceCell::new();
    let out = WorldBuilder::new(size)
        .sched(SchedPolicy::Seeded(seed))
        .trace_cell(&cell)
        .run(move |comm| {
            // Fan-in with ANY_SOURCE: the match order is a scheduler
            // decision.
            let mut gathered = 0u64;
            if comm.rank() == 0 {
                for _ in 1..comm.size() {
                    let (src, v): (usize, u64) = comm.recv_any(7);
                    assert_eq!(v, src as u64 * 3);
                    gathered += v;
                }
            } else {
                comm.send(0, 7, comm.rank() as u64 * 3);
            }
            // Collectives still agree under serialized execution.
            let total = comm.allreduce_scalar(comm.rank() as u64, |a, b| a + b);
            let expect: u64 = (0..comm.size() as u64).sum();
            assert_eq!(total, expect);
            comm.barrier();
            gathered + total
        });
    (out, cell.take().expect("trace deposited"))
}

#[test]
fn same_seed_same_trace() {
    for size in [1, 4, 8] {
        let (out_a, trace_a) = seeded_workload(42, size);
        let (out_b, trace_b) = seeded_workload(42, size);
        assert_eq!(out_a, out_b);
        assert_eq!(trace_a, trace_b, "seed 42 must replay byte-identically");
        assert_eq!(trace_a.to_json(), trace_b.to_json());
        assert_eq!(trace_a.seed, Some(42));
        if size > 1 {
            assert!(!trace_a.events.is_empty());
        }
    }
}

#[test]
fn different_seeds_explore_different_interleavings() {
    // Not guaranteed for any single pair, but across 8 seeds on a
    // 4-rank fan-in at least two schedules must differ.
    let traces: Vec<Trace> = (0..8).map(|s| seeded_workload(s, 4).1).collect();
    assert!(
        traces.iter().any(|t| *t != traces[0]),
        "8 seeds produced the identical schedule — the policy is not seeded"
    );
    // And every one of them computed the right answer (checked inside
    // the workload's asserts).
}

#[test]
fn replay_reproduces_a_recorded_run() {
    let (_, trace) = seeded_workload(7, 4);
    let cell = TraceCell::new();
    let replayed = WorldBuilder::new(4)
        .sched(SchedPolicy::Replay(trace.clone()))
        .trace_cell(&cell)
        .run(move |comm| {
            let mut gathered = 0u64;
            if comm.rank() == 0 {
                for _ in 1..comm.size() {
                    let (_, v): (usize, u64) = comm.recv_any(7);
                    gathered += v;
                }
            } else {
                comm.send(0, 7, comm.rank() as u64 * 3);
            }
            let total = comm.allreduce_scalar(comm.rank() as u64, |a, b| a + b);
            comm.barrier();
            gathered + total
        });
    assert_eq!(replayed, vec![24, 6, 6, 6]);
    assert_eq!(
        cell.take().expect("trace").events,
        trace.events,
        "replay must regenerate the recorded event stream"
    );
}

#[test]
fn replay_divergence_is_detected() {
    let (_, trace) = seeded_workload(7, 2);
    let err = std::panic::catch_unwind(|| {
        WorldBuilder::new(2)
            .sched(SchedPolicy::Replay(trace))
            .run(|comm| {
                // A different program than the one recorded: extra
                // traffic diverges from the trace.
                if comm.rank() == 0 {
                    comm.send(1, 99, 1u8);
                } else {
                    let _: u8 = comm.recv(0, 99);
                }
            })
    })
    .expect_err("divergent replay must panic");
    let msg = minimpi::sched::panic_text(&*err);
    assert!(msg.contains("replay diverged"), "got: {msg}");
}

#[test]
fn virtual_deadline_fires_without_wall_clock_waiting() {
    let t0 = std::time::Instant::now();
    // A 60-second deadline that must resolve instantly in virtual time:
    // nobody ever sends, so quiescence fires the deadline.
    WorldBuilder::new(2)
        .sched(SchedPolicy::Seeded(3))
        .run(|comm| {
            if comm.rank() == 0 {
                let got: minimpi::Result<(usize, u64)> =
                    comm.recv_deadline(1, 5, Duration::from_secs(60));
                let err = got.expect_err("no sender: deadline must fire");
                assert!(err.to_string().contains("deadline exceeded"));
            }
        });
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "virtual deadline must not consume wall-clock time"
    );
}

#[test]
fn injected_delay_advances_virtual_clock_not_wall_clock() {
    let faults = FaultHandle::new();
    faults.delay_link(0, 1, Duration::from_secs(30));
    let t0 = std::time::Instant::now();
    WorldBuilder::new(2)
        .fault_handle(faults)
        .sched(SchedPolicy::Seeded(11))
        .run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 2, 77u64);
            } else {
                let v: u64 = comm.recv(0, 2);
                assert_eq!(v, 77);
            }
        });
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "30s injected delay must be virtual under the scheduler"
    );
}

#[test]
fn exact_deadlock_report_names_every_blocked_rank() {
    let err = std::panic::catch_unwind(|| {
        WorldBuilder::new(2)
            .sched(SchedPolicy::Seeded(5))
            .run(|comm| {
                // Classic cross wait: both ranks receive first.
                let peer = 1 - comm.rank();
                let _: u8 = comm.recv(peer, 55);
                comm.send(peer, 55, 1u8);
            })
    })
    .expect_err("cross wait must be reported as deadlock");
    let msg = minimpi::sched::panic_text(&*err);
    assert!(msg.contains("deadlock detected"), "got: {msg}");
    assert!(msg.contains("seed 5"), "report must carry the seed: {msg}");
    assert!(msg.contains("world rank 0"), "got: {msg}");
    assert!(msg.contains("world rank 1"), "got: {msg}");
    assert!(msg.contains("user:55"), "got: {msg}");
}

#[test]
fn deadlock_is_deterministic_across_runs() {
    let report = |seed: u64| -> String {
        let err = std::panic::catch_unwind(|| {
            WorldBuilder::new(3)
                .sched(SchedPolicy::Seeded(seed))
                .run(|comm| {
                    // Rank 2 never sends: 0 and 1 starve after a round
                    // of real traffic.
                    if comm.rank() == 0 {
                        comm.send(1, 9, 1u32);
                        let _: u32 = comm.recv(2, 9);
                    } else if comm.rank() == 1 {
                        let _: u32 = comm.recv(0, 9);
                        let _: u32 = comm.recv(2, 9);
                    }
                })
        })
        .expect_err("starvation must deadlock");
        minimpi::sched::panic_text(&*err)
    };
    assert_eq!(report(13), report(13), "same seed, same deadlock report");
}

/// The deliberately reintroduced ordering bug the explorer must find: a
/// fan-in that *assumes* `ANY_SOURCE` matches in rank order. Correct
/// under some interleavings, wrong under others — invisible to a single
/// happy-path run, found by seed search, reproduced by replay.
fn rank_order_assuming_fanin(comm: &minimpi::Comm) {
    if comm.rank() == 0 {
        let mut order = Vec::new();
        for _ in 1..comm.size() {
            let (src, _): (usize, u64) = comm.recv_any(21);
            order.push(src);
        }
        let sorted: Vec<usize> = (1..comm.size()).collect();
        assert_eq!(order, sorted, "fan-in arrived out of rank order");
    } else {
        comm.send(0, 21, comm.rank() as u64);
    }
    comm.barrier();
}

#[test]
fn explorer_finds_the_planted_ordering_bug_and_replay_reproduces_it() {
    let failure = Explorer::new(1)
        .max_runs(64)
        .run(3, rank_order_assuming_fanin)
        .expect("the ordering assumption must fail under some schedule");
    assert!(
        failure.message.contains("out of rank order"),
        "wrong failure: {}",
        failure.message
    );
    assert!(!failure.trace.events.is_empty());
    assert_eq!(failure.trace.seed, Some(failure.seed));

    // The trace round-trips through its JSON wire form and replays the
    // exact failing interleaving — deterministically, every time.
    let wire = failure.trace.to_json();
    let trace = Trace::from_json(&wire).expect("trace parses");
    for _ in 0..2 {
        let err = std::panic::catch_unwind(|| {
            WorldBuilder::new(3)
                .sched(SchedPolicy::Replay(trace.clone()))
                .run(rank_order_assuming_fanin)
        })
        .expect_err("replaying the failing trace must fail again");
        let msg = minimpi::sched::panic_text(&*err);
        assert!(msg.contains("out of rank order"), "got: {msg}");
    }
}

#[test]
fn explorer_passes_clean_programs_and_respects_budget() {
    let runs = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&runs);
    let outcome = Explorer::new(100).max_runs(5).run(2, move |comm| {
        if comm.rank() == 0 {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.send(1, 1, 1u8);
        } else {
            let _: u8 = comm.recv(0, 1);
        }
        comm.barrier();
    });
    assert!(outcome.is_none(), "clean program must pass exploration");
    assert_eq!(runs.load(Ordering::SeqCst), 5, "max_runs bounds the search");
}

#[test]
fn explorer_permutes_fault_sites() {
    // With a dropped link, whether the victim's deadline error or the
    // peer's progress happens first is schedule-dependent; exploration
    // with a fault handle must still terminate and pass a tolerant
    // program.
    let outcome = Explorer::new(7).max_runs(8).run_with(
        2,
        |b| {
            let faults = FaultHandle::new();
            faults.drop_link(0, 1);
            b.fault_handle(faults)
        },
        |comm| {
            if comm.rank() == 0 {
                comm.send(1, 4, 9u8);
            } else {
                let got: minimpi::Result<(usize, u8)> =
                    comm.recv_deadline(0, 4, Duration::from_secs(60));
                assert!(got.is_err(), "dropped link must starve the receive");
            }
        },
    );
    assert!(outcome.is_none());
}

#[test]
fn seeded_split_and_collectives_agree_with_os_run() {
    let work = |comm: &minimpi::Comm| -> u64 {
        let sub = comm.split((comm.rank() % 2) as u32, comm.rank() as u32);
        sub.allreduce_scalar(comm.rank() as u64, |a, b| a + b)
    };
    let os = World::run(4, work);
    let seeded = WorldBuilder::new(4).sched(SchedPolicy::Seeded(9)).run(work);
    assert_eq!(os, seeded, "scheduling policy must not change results");
}

#[test]
fn wtime_is_deterministic_under_seeds() {
    let stamps = |seed: u64| -> Vec<u64> {
        WorldBuilder::new(2)
            .sched(SchedPolicy::Seeded(seed))
            .run(|comm| {
                comm.barrier();
                let t = comm.wtime();
                comm.barrier();
                t.to_bits()
            })
    };
    assert_eq!(stamps(4), stamps(4), "virtual wtime must be reproducible");
}
