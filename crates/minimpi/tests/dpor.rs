//! Systematic checker unit coverage: guided scheduling, DPOR
//! reduction vs the exhaustive baseline, liveness thresholds, and the
//! ddmin shrinker + bitwise replay pipeline. The cross-crate protocol
//! corpus lives in the workspace-level `tests/modelcheck_planted.rs`.

use std::time::Duration;

use minimpi::sched::yield_point;
use minimpi::{
    Checker, Comm, Guide, LivenessSpec, SchedPolicy, TraceCell, WorldBuilder, ANY_SOURCE,
};

/// Three ranks whose sends to rank 0 carry *distinct* tags: every
/// interleaving of the two sends is observably equivalent, so DPOR
/// should collapse the schedule tree while exhaustive enumeration
/// walks every co-enabled ordering.
fn independent_sends(comm: &Comm) {
    match comm.rank() {
        0 => {
            let a: u64 = comm.recv(1, 11);
            let b: u64 = comm.recv(2, 22);
            assert_eq!(a + b, 30);
        }
        r => comm.send(0, 11 * r as u32, (r * 10) as u64),
    }
}

/// Rank 0 receives two `ANY_SOURCE` messages under one tag and asserts
/// they arrive in rank order — a schedule-dependent planted bug that
/// only fires when rank 2's message is matched first.
fn rank_order_assumption(comm: &Comm) {
    match comm.rank() {
        0 => {
            let first: u64 = comm.recv(ANY_SOURCE, 7);
            let second: u64 = comm.recv(ANY_SOURCE, 7);
            assert!(
                first <= second,
                "planted: results assumed to arrive in rank order ({first} then {second})"
            );
        }
        r => comm.send(0, 7, r as u64),
    }
}

#[test]
fn guided_world_runs_clean_and_records_decisions() {
    let guide = Guide::new(Vec::new());
    let log = guide.log();
    let cell = TraceCell::new();
    WorldBuilder::new(3)
        .sched(SchedPolicy::Guided(guide))
        .trace_cell(&cell)
        .run(independent_sends);
    let (records, divergences) = log.take();
    assert_eq!(divergences, 0);
    assert!(
        records.iter().any(|r| r.enabled.len() > 1),
        "a 3-rank world must hit at least one real scheduling choice"
    );
    let trace = cell.take().expect("trace deposited");
    assert_eq!(trace.seed, None);
    assert!(!trace.events.is_empty());
    // Decisions point into the trace.
    for r in &records {
        assert!(r.trace_pos <= trace.events.len());
        assert!(r.enabled.contains(&r.chosen));
    }
}

#[test]
fn guided_prefix_forces_the_first_run_decision() {
    for forced in 0..3usize {
        let guide = Guide::new(vec![forced]);
        let log = guide.log();
        WorldBuilder::new(3)
            .sched(SchedPolicy::Guided(guide))
            .run(independent_sends);
        let (records, divergences) = log.take();
        assert_eq!(divergences, 0, "slot {forced} is enabled at the start");
        assert_eq!(records[0].chosen, forced);
    }
}

#[test]
fn systematic_explores_strictly_fewer_schedules_than_exhaustive() {
    let dpor = Checker::new()
        .max_schedules(10_000)
        .run(3, independent_sends);
    let exhaustive = Checker::new()
        .max_schedules(10_000)
        .exhaustive()
        .run(3, independent_sends);
    assert!(dpor.failure.is_none(), "scenario is clean");
    assert!(exhaustive.failure.is_none(), "scenario is clean");
    assert!(
        !dpor.stats.budget_exhausted && !exhaustive.stats.budget_exhausted,
        "both trees must complete inside the budget for a fair comparison"
    );
    assert!(
        dpor.stats.schedules_explored < exhaustive.stats.schedules_explored,
        "DPOR ({}) must beat exhaustive ({})",
        dpor.stats.schedules_explored,
        exhaustive.stats.schedules_explored
    );
    assert!(
        dpor.stats.pruned_independent > 0,
        "the reduction must actually prune: {:?}",
        dpor.stats
    );
    assert!(dpor.stats.pruning_ratio() > 0.0);
}

#[test]
fn checker_finds_the_any_source_ordering_bug_and_replays_it_bitwise() {
    let report = Checker::new()
        .max_schedules(256)
        .run(3, rank_order_assumption);
    let failure = report
        .failure
        .expect("the planted ordering bug must be found");
    assert!(
        failure.message.contains("planted: results assumed"),
        "unexpected failure: {}",
        failure.message
    );
    assert!(
        failure.replayed_bitwise,
        "shrunk trace must reproduce the failure bitwise under Replay"
    );
    assert!(
        failure.prefix.len() <= failure.original_choices,
        "shrinking never grows the prefix"
    );
    // The minimized trace replays the failure through the public
    // Replay policy too (what a developer does with the artifact).
    let cell = TraceCell::new();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        WorldBuilder::new(3)
            .sched(SchedPolicy::Replay(failure.trace.clone()))
            .liveness(LivenessSpec::default())
            .trace_cell(&cell)
            .run(rank_order_assumption);
    }));
    let payload = outcome.expect_err("replay must reproduce the panic");
    let message = minimpi::sched::panic_text(&*payload);
    assert!(message.contains("planted: results assumed"), "{message}");
    let replayed = cell.take().expect("replay trace");
    assert_eq!(replayed.events, failure.trace.events, "bitwise replay");
}

#[test]
fn decision_budget_reports_starvation_with_progress_dump() {
    // Rank 1 sends one request and waits for an answer rank 0 never
    // sends; ranks 0 and 2 ping-pong forever. Under the fair default
    // policy rank 1 is *scheduled* but cannot progress: classified as
    // starvation when the decision budget trips.
    let report = Checker::new()
        .max_schedules(1)
        .liveness(LivenessSpec {
            max_decisions: 400,
            spin_limit: 0,
            starvation_window: 100,
        })
        .run(3, |comm| match comm.rank() {
            1 => {
                comm.send(0, 5, 1u64);
                let _: u64 = comm.recv(0, 6);
            }
            r => {
                let peer = 2 - r; // 0 <-> 2
                loop {
                    if r == 0 {
                        comm.send(peer, 9, 0u64);
                        let _: u64 = comm.recv(peer, 9);
                    } else {
                        let _: u64 = comm.recv(peer, 9);
                        comm.send(peer, 9, 0u64);
                    }
                }
            }
        });
    let failure = report.failure.expect("budget breach is a finding");
    assert!(
        failure.message.contains("starvation: world rank(s) [1]"),
        "classification names the starved rank: {}",
        failure.message
    );
    assert!(failure.message.contains("last progress at decision"));
    assert!(failure.replayed_bitwise, "liveness aborts replay bitwise");
}

#[test]
fn spin_limit_reports_livelock_at_yield_points() {
    // Rank 0 spins at a yield point waiting for a flag rank 1 will
    // never set — the backpressure-publisher shape.
    let report = Checker::new()
        .max_schedules(1)
        .liveness(LivenessSpec {
            max_decisions: 10_000,
            spin_limit: 50,
            starvation_window: 0,
        })
        .run(2, |comm| {
            if comm.rank() == 0 {
                loop {
                    // Never-satisfied condition; each turn is a spin.
                    yield_point();
                }
            } else {
                let _: u64 = comm.recv(0, 1);
            }
        });
    let failure = report.failure.expect("spin limit breach is a finding");
    assert!(
        failure.message.contains("livelock: world rank 0 spun"),
        "{}",
        failure.message
    );
    assert!(failure.replayed_bitwise);
}

#[test]
fn deterministic_deadlock_is_found_shrunk_and_replayed() {
    // Classic cross-wait: both ranks receive before sending.
    let report = Checker::new().max_schedules(4).run(2, |comm| {
        let peer = 1 - comm.rank();
        let _: u64 = comm.recv(peer, 3);
        comm.send(peer, 3, 0u64);
    });
    let failure = report.failure.expect("deadlock found");
    assert!(
        failure.message.contains("deterministic deadlock detected"),
        "{}",
        failure.message
    );
    assert!(failure.replayed_bitwise);
    assert!(
        failure.prefix.is_empty(),
        "a schedule-independent deadlock shrinks to the empty prefix"
    );
}

#[test]
fn clean_scenarios_produce_no_findings_and_terminate() {
    let report = Checker::new()
        .max_schedules(10_000)
        .wall_cap(Duration::from_secs(60))
        .run(3, |comm| {
            let sum = comm.allreduce_scalar(comm.rank() as u64, |a, b| a + b);
            assert_eq!(sum, 3);
        });
    assert!(report.failure.is_none());
    assert!(!report.stats.budget_exhausted);
    assert!(report.stats.schedules_explored >= 1);
}

#[test]
fn checker_exports_probe_gauges() {
    let probe = probe::Probe::enabled();
    let report = Checker::new()
        .max_schedules(64)
        .probe(probe.clone())
        .run(3, independent_sends);
    assert!(report.failure.is_none());
    let snap = probe.snapshot();
    assert_eq!(
        snap.gauge("modelcheck/schedules"),
        Some(report.stats.schedules_explored)
    );
    assert!(snap.gauge("modelcheck/backtrack_depth_max").is_some());
    assert!(snap.gauge("modelcheck/pruned_permille").is_some());
}
