//! Failure-mode coverage for the fail-fast layer: collective-order
//! verification, recv deadlines, the deadlock watchdog, and injected
//! transport faults. At the paper's target scale a silent hang is the
//! worst possible failure mode — each test here pins down that a specific
//! misuse or fault produces a *diagnostic* error instead.

use std::time::{Duration, Instant};

use minimpi::{Error, FaultHandle, World, WorldBuilder};

/// Milliseconds scaled by `MINIMPI_TEST_TIME_SCALE` (default 1).
///
/// Every timing in this file — watchdog grace, recv deadlines, injected
/// delays, and the bounds asserted against them — goes through this
/// helper, so a slow or loaded machine can export e.g.
/// `MINIMPI_TEST_TIME_SCALE=4` and stretch all of them together: the
/// ratios the assertions rely on are preserved, the flake window is not.
fn scaled(ms: u64) -> Duration {
    static SCALE: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    let s = *SCALE.get_or_init(|| {
        std::env::var("MINIMPI_TEST_TIME_SCALE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|s| s.is_finite() && *s > 0.0)
            .unwrap_or(1.0)
    });
    Duration::from_nanos((ms as f64 * 1e6 * s) as u64)
}

/// Rank 0 enters a broadcast while rank 1 enters a scan: the scan's
/// upstream receive sees Bcast traffic where Scan traffic is due and
/// panics with the per-rank diagnostic instead of deadlocking.
#[test]
#[should_panic(expected = "collective mismatch")]
fn mismatched_collective_kinds_panic() {
    World::run(2, |comm| {
        if comm.rank() == 0 {
            // Root of a bcast only sends, so rank 0 exits cleanly.
            let _ = comm.bcast(0, Some(7u32));
        } else {
            // Scan waits on rank 0, which is in a different collective.
            let _ = comm.scan(1u32, |a, b| a + b);
        }
    });
}

#[test]
fn recv_deadline_fires_instead_of_hanging() {
    World::run(2, |comm| {
        if comm.rank() == 1 {
            // Nobody ever sends tag 9: the deadline must fire.
            let t0 = Instant::now();
            let got: minimpi::Result<(usize, u64)> = comm.recv_deadline(0, 9, scaled(50));
            match got {
                Err(Error::DeadlineExceeded { src, waited, .. }) => {
                    assert_eq!(src, 0);
                    assert!(waited >= scaled(50));
                }
                other => panic!("expected DeadlineExceeded, got {other:?}"),
            }
            assert!(t0.elapsed() < scaled(5_000), "deadline overshot");
        }
        // A message that does arrive is still delivered under a deadline.
        if comm.rank() == 0 {
            comm.send(1, 8, 42u64);
        } else {
            let (from, v): (usize, u64) = comm
                .recv_deadline(0, 8, scaled(5_000))
                .expect("message was sent");
            assert_eq!((from, v), (0, 42));
        }
    });
}

#[test]
fn deadline_error_reports_pending_queue() {
    World::run(2, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 77, 1u8); // queued but never asked for
        } else {
            let err = comm
                .recv_deadline::<u8>(0, 99, scaled(100))
                .expect_err("tag 99 is never sent");
            let text = err.to_string();
            assert!(text.contains("user:99"), "missing awaited tag: {text}");
            assert!(
                text.contains("from 0: user:77"),
                "missing pending dump: {text}"
            );
        }
    });
}

/// Two ranks each wait for a message the other never sends: the watchdog
/// must convert the hang into a panic carrying the per-rank dump.
#[test]
fn watchdog_aborts_deadlock_with_rank_dump() {
    let result = std::panic::catch_unwind(|| {
        WorldBuilder::new(2).watchdog(scaled(200)).run(|comm| {
            // Cross traffic on the wrong tags lands in pending, so the
            // report can show what each rank *did* receive.
            comm.send(1 - comm.rank(), 10 + comm.rank() as u32, 1u8);
            let _: u8 = comm.recv(1 - comm.rank(), 55);
        });
    });
    let payload = result.expect_err("deadlocked world must panic");
    let text = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a string");
    assert!(text.contains("deadlock detected"), "got: {text}");
    assert!(text.contains("world rank 0"), "missing rank dump: {text}");
    assert!(text.contains("user:55"), "missing awaited tag: {text}");
    assert!(text.contains("pending"), "missing pending dump: {text}");
}

#[test]
fn fault_dropped_link_loses_messages_and_counts_them() {
    let faults = FaultHandle::new();
    faults.drop_link(0, 1);
    let handle = faults.clone();
    World::run(2, |_| ()); // sanity: a clean world first
    WorldBuilder::new(2).fault_handle(handle).run(|comm| {
        if comm.rank() == 0 {
            comm.send(1, 5, 1u8);
            comm.send(1, 6, 2u8);
            comm.send(0, 5, 3u8); // self link unaffected
            let v: u8 = comm.recv(0, 5);
            assert_eq!(v, 3);
        } else {
            let got: minimpi::Result<(usize, u8)> = comm.recv_deadline(0, 5, scaled(50));
            assert!(got.is_err(), "dropped message was delivered");
        }
    });
    assert_eq!(faults.dropped(), 2);
}

#[test]
fn fault_heal_restores_the_link() {
    let faults = FaultHandle::new();
    faults.drop_link(0, 1);
    let handle = faults.clone();
    let probe = faults.clone();
    WorldBuilder::new(2).fault_handle(handle).run(move |comm| {
        if comm.rank() == 0 {
            comm.send(1, 1, 1u8); // dropped
            probe.heal();
            comm.send(1, 2, 2u8); // delivered
        } else {
            let v: u8 = comm.recv(0, 2);
            assert_eq!(v, 2);
            assert!(
                comm.recv_deadline::<u8>(0, 1, scaled(50)).is_err(),
                "pre-heal message resurfaced"
            );
        }
    });
    assert_eq!(faults.dropped(), 1);
}

#[test]
fn fault_delay_link_slows_delivery() {
    let faults = FaultHandle::new();
    faults.delay_link(0, 1, scaled(40));
    WorldBuilder::new(2).fault_handle(faults).run(|comm| {
        if comm.rank() == 0 {
            comm.send(1, 3, 9u8);
        } else {
            let t0 = Instant::now();
            let v: u8 = comm.recv(0, 3);
            assert_eq!(v, 9);
            assert!(
                t0.elapsed() >= scaled(25),
                "delay fault did not slow the link: {:?}",
                t0.elapsed()
            );
        }
    });
}

/// An isolated rank is mute in both directions; peers see timeouts, not
/// hangs, and the isolated rank's own sends vanish.
#[test]
fn fault_isolated_rank_goes_dark() {
    let faults = FaultHandle::new();
    faults.isolate(1);
    WorldBuilder::new(3)
        .fault_handle(faults.clone())
        .run(|comm| {
            match comm.rank() {
                0 => {
                    comm.send(1, 4, 1u8); // into the void
                    comm.send(2, 4, 2u8); // healthy path
                }
                1 => {
                    comm.send(2, 4, 3u8); // also dropped
                    assert!(comm.recv_deadline::<u8>(0, 4, scaled(50)).is_err());
                }
                _ => {
                    let (from, v): (usize, u8) = comm
                        .recv_deadline(minimpi::ANY_SOURCE, 4, scaled(5_000))
                        .expect("healthy path delivers");
                    assert_eq!((from, v), (0, 2));
                    assert!(comm.recv_deadline::<u8>(1, 4, scaled(50)).is_err());
                }
            }
        });
    assert_eq!(faults.dropped(), 2);
}
