//! Per-application cost models for the paper's workloads.
//!
//! Each function composes the substrate models (`network`, `storage`,
//! `compositing`) with calibrated local-compute rates into the
//! per-timestep and one-time costs that the figures report. Calibration
//! anchors are cited inline; solver-background times that the paper only
//! reports as totals (PHASTA, Nyx) use calibration tables rather than
//! pretending to a first-principles CFD model — the paper's contribution
//! is the in situ overhead *around* the solver, and that part is modeled
//! structurally.

use crate::compositing::{self, Algorithm};
use crate::machine::{CalibTable, MachineSpec};
use crate::network;
use crate::{Breakdown, MB};

/// Oscillator-miniapp cell-update throughput of one Cori Haswell core,
/// in oscillator·cell evaluations per second. Calibrated so a 64³
/// subgrid with 3 oscillators costs ≈0.35 s/step, which reproduces the
/// paper's prose anchors: writes have "little impact" at 1K
/// (0.12 s ≈ ⅓ of a step) and take "about 20×" a step at 45K
/// (9.05 s ≈ 20 × 0.46 s).
pub const OSC_EVAL_RATE: f64 = 2.25e6;

/// Values/second one core streams for min/max+binning passes.
pub const SCAN_RATE: f64 = 4.0e8;

/// Autocorrelation multiply-accumulate throughput, ops/second/core.
pub const AUTOCORR_RATE: f64 = 2.0e8;

/// Items/second a core merges in the final top-k reduction.
pub const MERGE_RATE: f64 = 2.0e7;

/// The paper's three miniapp scales: `(cores, cells per core)`.
/// 812/6496 use 68³ per core; the 45,440-core run carries the work
/// planned for 50K cores (70³ per core). These reproduce Table 1's
/// per-step dataset sizes exactly: 2 GB / 16 GB / 123 GB.
pub fn miniapp_scales() -> [(usize, usize); 3] {
    [
        (812, 68 * 68 * 68),
        (6496, 68 * 68 * 68),
        (45440, 70 * 70 * 70),
    ]
}

/// Bytes of one timestep of miniapp output (one f64 field).
pub fn miniapp_step_bytes(cores: usize, cells_per_core: usize) -> f64 {
    (cores * cells_per_core * 8) as f64
}

/// Seconds of one miniapp timestep on one rank (embarrassingly parallel;
/// no synchronization, as in §3.3 with per-step sync off).
pub fn oscillator_step(m: &MachineSpec, cells_per_rank: usize, num_oscillators: usize) -> f64 {
    (cells_per_rank * num_oscillators) as f64 / (OSC_EVAL_RATE * m.core_speed)
}

/// Per-timestep cost of the histogram analysis: two local passes
/// (min/max, then binning) plus the two scalar allreduces and the final
/// histogram reduction to root.
pub fn histogram_step(m: &MachineSpec, p: usize, cells_per_rank: usize, bins: usize) -> f64 {
    let local = 2.0 * cells_per_rank as f64 / (SCAN_RATE * m.core_speed);
    let minmax = 2.0 * network::allreduce(m, p, 8.0);
    let reduce = network::reduce(m, p, (bins * 8) as f64);
    local + minmax + reduce
}

/// Per-timestep cost of the autocorrelation analysis: one
/// multiply-accumulate per cell per retained delay, plus circular-buffer
/// maintenance.
pub fn autocorrelation_step(m: &MachineSpec, cells_per_rank: usize, window: usize) -> f64 {
    (cells_per_rank * window) as f64 / (AUTOCORR_RATE * m.core_speed)
}

/// One-time finalization of the autocorrelation analysis: every rank
/// sorts out its local top-k per delay, then a gather+merge identifies
/// the global top-k — the "non-negligible" finalize of Fig. 5.
pub fn autocorrelation_finalize(
    m: &MachineSpec,
    p: usize,
    cells_per_rank: usize,
    window: usize,
    k: usize,
) -> f64 {
    let local_select =
        (cells_per_rank as f64 * (k as f64).log2().max(1.0)) / (SCAN_RATE * m.core_speed);
    let payload = (k * window * 16) as f64;
    let gather = network::gather(m, p, payload);
    let root_merge = (p * k * window) as f64 / (MERGE_RATE * m.core_speed);
    local_select + gather + root_merge
}

/// Number of ranks whose block intersects an axis-aligned slice plane of
/// a cubic decomposition: one 2D sheet of the 3D rank grid.
pub fn slice_participants(p: usize) -> usize {
    (p as f64).powf(2.0 / 3.0).ceil() as usize
}

/// Local slice extraction on a participating rank: touch one plane of
/// the subgrid (≈ cells^(2/3) values).
pub fn slice_extract(m: &MachineSpec, cells_per_rank: usize) -> f64 {
    (cells_per_rank as f64).powf(2.0 / 3.0) * 4.0 / (SCAN_RATE * m.core_speed)
}

/// Serial PNG encode on rank 0 (filtering + zlib DEFLATE — the Table 2
/// culprit). `raw_bytes` is width × height × 3.
pub fn png_encode(m: &MachineSpec, raw_bytes: f64) -> f64 {
    raw_bytes / m.zlib_bw
}

/// Per-timestep cost of the Catalyst slice pipeline: extract, render and
/// binary-swap composite among slice-intersecting ranks, serial PNG on
/// rank 0. Image 1920×1080 (the paper's Catalyst resolution).
pub fn catalyst_slice_step(m: &MachineSpec, p: usize, cells_per_rank: usize) -> f64 {
    let peff = slice_participants(p);
    let image = compositing::rgba_bytes(1920, 1080);
    slice_extract(m, cells_per_rank)
        + compositing::composite(m, Algorithm::BinarySwap, peff, image)
        + png_encode(m, compositing::rgb_bytes(1920, 1080))
}

/// Per-timestep cost of the Libsim slice pipeline: 1600×1600 image,
/// direct-send tree compositing with active-pixel (¼) payloads —
/// a different algorithm with visibly different scaling, per Fig. 6.
pub fn libsim_slice_step(m: &MachineSpec, p: usize, cells_per_rank: usize) -> f64 {
    let peff = slice_participants(p);
    let image = compositing::rgba_bytes(1600, 1600) * 0.25;
    slice_extract(m, cells_per_rank)
        + compositing::composite(m, Algorithm::DirectSendTree { fanout: 8 }, peff, image)
        + png_encode(m, compositing::rgb_bytes(1600, 1600))
}

/// One-time Libsim initialization: per-rank configuration-file checks
/// serialize on the metadata server — the ≈3.5 s at 45K that Fig. 5
/// calls out as removable overhead — plus session-file parsing.
pub fn libsim_init(m: &MachineSpec, p: usize) -> f64 {
    p as f64 / m.mds_stat_rate + 0.05
}

/// One-time Catalyst initialization (pipeline construction; no per-rank
/// file traffic).
pub fn catalyst_init(_m: &MachineSpec, _p: usize) -> f64 {
    0.12
}

/// One-time miniapp initialization: read the oscillator file on rank 0,
/// broadcast, allocate the subgrid.
pub fn sim_init(m: &MachineSpec, p: usize, cells_per_rank: usize) -> f64 {
    network::bcast(m, p, 4096.0) + cells_per_rank as f64 * 8.0 / 8e9
}

/// ADIOS/FlexPath endpoint (reader) startup: every writer–reader pair
/// performs a connection handshake that contends on the host's network
/// stack; Cori's cost per connection is an order of magnitude higher
/// than Titan's (§4.1.4).
pub fn flexpath_reader_init(m: &MachineSpec, p: usize) -> f64 {
    p as f64 * m.staging_connect_cost
}

/// Per-timestep `adios::advance` cost: metadata exchange between writer
/// and reader groups (small allreduce + index update).
pub fn adios_advance(m: &MachineSpec, p: usize) -> f64 {
    network::allreduce(m, p, 256.0) + 0.004
}

/// Per-timestep `adios::analysis` transmission cost for `bytes_per_rank`:
/// FlexPath is not yet zero-copy (§4.1.4), so the writer pays a buffer
/// copy plus the transfer to the co-scheduled endpoint (hyperthread
/// sharing halves effective memory bandwidth).
pub fn adios_transmit(m: &MachineSpec, bytes_per_rank: f64) -> f64 {
    let copy = bytes_per_rank / (4e9 * m.core_speed);
    let transfer = bytes_per_rank / (2e9 * m.core_speed);
    copy + transfer
}

/// Fraction of the endpoint's analysis time the co-scheduled writer
/// absorbs as blocking + hyperthread interference. Calibrated to the
/// §4.1.4 observation of "an average of a 50% runtime penalty" for
/// Catalyst-slice over FlexPath versus inline.
pub const ADIOS_COSCHEDULE_FACTOR: f64 = 0.45;

/// Writer-side per-timestep cost of running `endpoint_analysis_seconds`
/// of analysis at a FlexPath endpoint sharing the writer's cores:
/// metadata advance + non-zero-copy transmission + blocking while the
/// hyperthread-sharing reader drains the previous step.
pub fn adios_staged_step(
    m: &MachineSpec,
    p: usize,
    bytes_per_rank: f64,
    endpoint_analysis_seconds: f64,
) -> f64 {
    adios_advance(m, p)
        + adios_transmit(m, bytes_per_rank)
        + ADIOS_COSCHEDULE_FACTOR * endpoint_analysis_seconds
}

// ---------------------------------------------------------------------
// Science applications
// ---------------------------------------------------------------------

/// PHASTA run configurations of Table 2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PhastaRun {
    /// 1.28 B elements, 262 144 ranks (64/node), 800×200 image, 120 steps.
    Is1,
    /// 1.28 B elements, 262 144 ranks (32/node), 2900×725 image, 120 steps.
    Is2,
    /// 6.33 B elements, 1 048 576 ranks (32/node), 2900×725, 30 steps.
    Is3,
}

impl PhastaRun {
    /// MPI ranks.
    pub fn ranks(self) -> usize {
        match self {
            PhastaRun::Is1 | PhastaRun::Is2 => 262_144,
            PhastaRun::Is3 => 1_048_576,
        }
    }

    /// Output image dimensions.
    pub fn image(self) -> (usize, usize) {
        match self {
            PhastaRun::Is1 => (800, 200),
            PhastaRun::Is2 | PhastaRun::Is3 => (2900, 725),
        }
    }

    /// Total timesteps of the run.
    pub fn steps(self) -> usize {
        match self {
            PhastaRun::Is1 | PhastaRun::Is2 => 120,
            PhastaRun::Is3 => 30,
        }
    }

    /// Mesh elements per rank.
    pub fn elements_per_rank(self) -> usize {
        match self {
            PhastaRun::Is1 | PhastaRun::Is2 => 1_280_000_000 / 262_144,
            PhastaRun::Is3 => 6_330_000_000 / 1_048_576,
        }
    }

    /// Background solver seconds per timestep — calibrated to Table 2's
    /// totals net of in situ time (the implicit FE solve is not what the
    /// paper measures; see DESIGN.md). IS1 runs 64 ranks/core-pair
    /// (4/core), halving per-rank memory bandwidth vs IS2.
    pub fn solver_step_seconds(self) -> f64 {
        match self {
            PhastaRun::Is1 => 8.04,
            PhastaRun::Is2 => 5.38,
            PhastaRun::Is3 => 18.9,
        }
    }
}

/// PHASTA's per-invocation in situ cost (SENSEI + Catalyst slice on the
/// unstructured mesh): extract + binary-swap composite + serial PNG.
/// Unlike the miniapp's axis-aligned slice, the tail-geometry slice cuts
/// most ranks, so all ranks composite.
pub fn phasta_insitu_step(m: &MachineSpec, run: PhastaRun) -> f64 {
    let (w, h) = run.image();
    let extract = (run.elements_per_rank() as f64) * 0.12 / (SCAN_RATE * m.core_speed);
    extract
        + compositing::composite(
            m,
            Algorithm::BinarySwap,
            run.ranks(),
            compositing::rgb_bytes(w, h),
        )
        + png_encode(m, compositing::rgb_bytes(w, h))
}

/// PHASTA one-time in situ cost (adaptor construction, Catalyst edition
/// pipeline load, first-use connectivity copy).
pub fn phasta_insitu_onetime(m: &MachineSpec, run: PhastaRun) -> f64 {
    let connectivity_copy = (run.elements_per_rank() * 4 * 8) as f64 / (2e9 * m.core_speed);
    1.0 + connectivity_copy + network::bcast(m, run.ranks(), 64.0 * 1024.0)
}

/// Full Table 2 row: `(one-time, per-insitu-step, total, percent)` —
/// images are produced every other timestep.
pub fn phasta_table2_row(m: &MachineSpec, run: PhastaRun) -> (f64, f64, f64, f64) {
    let onetime = phasta_insitu_onetime(m, run);
    let per_step = phasta_insitu_step(m, run);
    let renders = run.steps() / 2;
    let insitu_total = onetime + per_step * renders as f64;
    let total = run.solver_step_seconds() * run.steps() as f64 + insitu_total;
    (onetime, per_step, total, 100.0 * insitu_total / total)
}

/// AVF-LESLIE strong-scaling solver step on Titan: 1025³ cells over `p`
/// cores, with halo/collective overheads that erode efficiency beyond
/// ~16K cores (§4.2.2).
pub fn leslie_solver_step(m: &MachineSpec, p: usize) -> f64 {
    let total_cells = 1025.0f64.powi(3);
    let cells_per_core = total_cells / p as f64;
    let rate = 9.0e4 / 0.6 * m.core_speed; // calibrated at titan core speed
    let compute = cells_per_core / rate;
    // Communication term grows with concurrency (halo + global reductions).
    let comm = 0.035 * (p as f64 / 8192.0).sqrt() + network::allreduce(m, p, 64.0);
    compute + comm
}

/// AVF-LESLIE's Libsim render invocation (3 isosurfaces + 3 slice planes
/// of vorticity magnitude, full-domain geometry so all ranks composite):
/// the 7–8 s cost of Fig. 16 at 65K cores.
pub fn leslie_render_invocation(m: &MachineSpec, p: usize) -> f64 {
    let total_cells = 1025.0f64.powi(3);
    let cells_per_core = total_cells / p as f64;
    // Marching cubes + slicing over the local block (6 passes).
    let extract = 6.0 * cells_per_core / (SCAN_RATE * 0.5 * m.core_speed);
    let image = compositing::rgba_bytes(1024, 1024);
    // Two composite rounds (opaque surfaces, then annotations).
    let composite =
        2.0 * compositing::composite(m, Algorithm::DirectSendTree { fanout: 8 }, p, image);
    extract + composite + png_encode(m, compositing::rgb_bytes(1024, 1024))
}

/// SENSEI data-adaptor overhead per invocation for AVF-LESLIE: vorticity
/// magnitude derivation plus ghost blanking (the <0.5 s floor of
/// Fig. 16).
pub fn leslie_adaptor_step(m: &MachineSpec, p: usize) -> f64 {
    let cells_per_core = 1025.0f64.powi(3) / p as f64;
    // Curl stencil = ~9 reads/cell.
    9.0 * cells_per_core / (SCAN_RATE * m.core_speed) + 0.02
}

/// AVF-LESLIE volume checkpoint (11 conserved/species variables): the
/// ≈24 s per step at 65K the paper contrasts with 1–1.5 s of in situ.
pub fn leslie_volume_write(m: &MachineSpec) -> f64 {
    let bytes = 1025.0f64.powi(3) * 8.0 * 11.0;
    crate::storage::collective_write(m, bytes)
}

/// Nyx solver step seconds (LyA problem, 40-step convergence runs):
/// calibrated to the reported wall-clock times of §4.2.3
/// (45 min / 1 h / 2 h 15 min at 512 / 4 096 / 32 768 cores).
pub fn nyx_solver_step(cores: usize) -> f64 {
    let table = CalibTable::new(vec![(512.0, 67.0), (4096.0, 90.0), (32768.0, 202.0)]);
    table.eval(cores as f64)
}

/// Nyx per-step in situ histogram (density field, 128 bins).
pub fn nyx_histogram_step(m: &MachineSpec, cores: usize) -> f64 {
    let cells_per_rank = 2 * 1024 * 1024; // 1024³/512 = 2048³/4096 = 2 Mi
    histogram_step(m, cores, cells_per_rank, 128)
}

/// Nyx per-step in situ slice via Catalyst (1024² image).
pub fn nyx_slice_step(m: &MachineSpec, cores: usize) -> f64 {
    let peff = slice_participants(cores);
    let image = compositing::rgba_bytes(1024, 1024);
    slice_extract(m, 2 * 1024 * 1024)
        + compositing::composite(m, Algorithm::BinarySwap, peff, image)
        + png_encode(m, compositing::rgb_bytes(1024, 1024))
}

/// Nyx plot-file write (8 variables): 17 s / 80 s / 312 s at the three
/// scales — effective bandwidth grows with the job's OST reach, so this
/// uses its own calibration table.
pub fn nyx_plotfile_write(grid: usize, cores: usize) -> f64 {
    let bytes = (grid as f64).powi(3) * 8.0 * 8.0;
    let bw = CalibTable::new(vec![(512.0, 4.0e9), (4096.0, 6.9e9), (32768.0, 14.1e9)]);
    bytes / bw.eval(cores as f64)
}

/// Assemble a per-timestep breakdown for a miniapp in situ configuration
/// (Fig. 6's bars): simulation + analysis.
pub fn miniapp_step_breakdown(
    m: &MachineSpec,
    _p: usize,
    cells: usize,
    oscillators: usize,
    analysis_seconds: f64,
) -> Breakdown {
    Breakdown::new()
        .with("simulation", oscillator_step(m, cells, oscillators))
        .with("analysis", analysis_seconds)
}

/// The SENSEI interface's own per-step overhead: constructing the
/// zero-copy adaptor view. Measured (real mode) at O(µs); modeled as a
/// constant floor. This is the paper's central "negligible" result.
pub fn sensei_adaptor_overhead() -> f64 {
    2.0e-6
}

/// Catalyst image bytes helper (1920×1080 RGB for PNG).
pub fn catalyst_png_bytes() -> f64 {
    compositing::rgb_bytes(1920, 1080)
}

/// Convenience: MB of one image.
pub fn image_mb(w: usize, h: usize) -> f64 {
    compositing::rgba_bytes(w, h) / MB
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cori() -> MachineSpec {
        MachineSpec::cori_haswell()
    }

    #[test]
    fn oscillator_step_anchor() {
        // 64³ cells, 3 oscillators ⇒ ≈0.35 s on a Haswell core.
        let t = oscillator_step(&cori(), 64 * 64 * 64, 3);
        assert!((t - 0.35).abs() < 0.01, "step {t}");
    }

    #[test]
    fn miniapp_weak_scaling_dataset_sizes_match_paper() {
        // Table 1 headline sizes: 2 GB / 16 GB / 123 GB per step.
        let sizes: Vec<f64> = miniapp_scales()
            .iter()
            .map(|&(c, n)| miniapp_step_bytes(c, n) / 1e9)
            .collect();
        assert!((sizes[0] - 2.0).abs() < 0.3, "{sizes:?}");
        assert!((sizes[1] - 16.0).abs() < 3.0, "{sizes:?}");
        assert!((sizes[2] - 123.0).abs() < 4.0, "{sizes:?}");
    }

    #[test]
    fn write_to_sim_ratios_follow_prose() {
        // 1K: writes have little impact; 45K: about 20× a step.
        let m = cori();
        let scales = miniapp_scales();
        let w45 = crate::storage::file_per_rank_write(
            &m,
            scales[2].0,
            miniapp_step_bytes(scales[2].0, scales[2].1),
        );
        let s45 = oscillator_step(&m, scales[2].1, 3);
        let ratio = w45 / s45;
        assert!((15.0..26.0).contains(&ratio), "45K write/sim ratio {ratio}");
        let w1 = crate::storage::file_per_rank_write(
            &m,
            scales[0].0,
            miniapp_step_bytes(scales[0].0, scales[0].1),
        );
        let s1 = oscillator_step(&m, scales[0].1, 3);
        assert!(w1 / s1 < 0.6, "1K write/sim ratio {}", w1 / s1);
    }

    #[test]
    fn analyses_are_cheap_relative_to_simulation() {
        // The paper's headline: in situ analysis overhead is low.
        let m = cori();
        for (p, cells) in miniapp_scales() {
            let sim = oscillator_step(&m, cells, 3);
            assert!(histogram_step(&m, p, cells, 64) < 0.2 * sim);
            assert!(autocorrelation_step(&m, cells, 10) < 0.2 * sim);
        }
    }

    #[test]
    fn libsim_init_anchor_at_45k() {
        // Fig. 5: ≈3.5 s of per-rank config checks at 45,440 ranks.
        let t = libsim_init(&cori(), 45440);
        assert!((t - 3.55).abs() < 0.2, "libsim init {t}");
    }

    #[test]
    fn autocorr_finalize_nonnegligible_at_scale() {
        let m = cori();
        let t = autocorrelation_finalize(&m, 45440, 70 * 70 * 70, 10, 16);
        assert!(t > 0.1, "finalize should be non-negligible, got {t}");
        assert!(t < 5.0, "but not huge: {t}");
    }

    #[test]
    fn phasta_table2_anchors() {
        let m = MachineSpec::mira_bgq();
        let (ot1, ps1, tot1, pct1) = phasta_table2_row(&m, PhastaRun::Is1);
        let (_, ps2, tot2, pct2) = phasta_table2_row(&m, PhastaRun::Is2);
        let (_, ps3, tot3, pct3) = phasta_table2_row(&m, PhastaRun::Is3);
        // Table 2: per-step 1.40 / 5.24 / 5.62; totals 1051 / 962 / 653;
        // percent 8.2 / 33 / 13.
        assert!((ps1 - 1.40).abs() < 0.3, "IS1 per-step {ps1}");
        assert!((ps2 - 5.24).abs() < 0.8, "IS2 per-step {ps2}");
        assert!((ps3 - 5.62).abs() < 0.9, "IS3 per-step {ps3}");
        assert!((tot1 - 1051.0).abs() < 60.0, "IS1 total {tot1}");
        assert!((tot2 - 962.0).abs() < 60.0, "IS2 total {tot2}");
        assert!((tot3 - 653.0).abs() < 60.0, "IS3 total {tot3}");
        assert!((pct1 - 8.2).abs() < 2.0, "IS1 pct {pct1}");
        assert!((pct2 - 33.0).abs() < 5.0, "IS2 pct {pct2}");
        assert!((pct3 - 13.0).abs() < 3.0, "IS3 pct {pct3}");
        assert!(ot1 < 3.0, "one-time small: {ot1}");
    }

    #[test]
    fn phasta_png_dominates_large_image() {
        // The Table 2 finding: image size (PNG zlib), not problem size,
        // drives per-step in situ cost.
        let m = MachineSpec::mira_bgq();
        let small = phasta_insitu_step(&m, PhastaRun::Is1);
        let big_same_problem = phasta_insitu_step(&m, PhastaRun::Is2);
        let big_bigger_problem = phasta_insitu_step(&m, PhastaRun::Is3);
        assert!(big_same_problem / small > 2.5, "image size effect");
        let rel = (big_bigger_problem - big_same_problem).abs() / big_same_problem;
        assert!(rel < 0.15, "problem size effect small: {rel}");
    }

    #[test]
    fn leslie_efficiency_degrades_past_16k() {
        let m = MachineSpec::titan();
        let t8 = leslie_solver_step(&m, 8192);
        let t16 = leslie_solver_step(&m, 16384);
        let t64 = leslie_solver_step(&m, 65536);
        let t128 = leslie_solver_step(&m, 131072);
        // Near-ideal to 16K…
        assert!(t8 / t16 > 1.75, "8K→16K speedup {}", t8 / t16);
        // …clearly sub-ideal at the top end.
        assert!(t64 / t128 < 1.5, "64K→128K speedup {}", t64 / t128);
    }

    #[test]
    fn leslie_render_anchor_at_65k() {
        // Fig. 16: 7–8 s per Libsim invocation at 65K cores.
        let m = MachineSpec::titan();
        let t = leslie_render_invocation(&m, 65536);
        assert!((6.5..8.5).contains(&t), "render {t}");
        // Adaptor floor < 0.5 s.
        assert!(leslie_adaptor_step(&m, 65536) < 0.5);
    }

    #[test]
    fn leslie_write_anchor() {
        // ≈24 s to write one volume step at 1025³.
        let t = leslie_volume_write(&MachineSpec::titan());
        assert!((20.0..28.0).contains(&t), "volume write {t}");
        // In situ affords 3–4× the temporal resolution of post hoc.
        let m = MachineSpec::titan();
        let insitu_per_step =
            leslie_render_invocation(&m, 65536) / 5.0 + leslie_adaptor_step(&m, 65536);
        let afford = t / (insitu_per_step * 5.0);
        assert!(afford > 2.0, "temporal-resolution advantage {afford}");
    }

    #[test]
    fn nyx_anchors() {
        // Steps: ~67 s / 90 s / 202 s; analyses < 1 s; writes 17/80/312 s.
        let m = cori();
        assert!((nyx_solver_step(512) - 67.0).abs() < 1.0);
        assert!((nyx_solver_step(32768) - 202.0).abs() < 1.0);
        for cores in [512usize, 4096, 32768] {
            assert!(nyx_histogram_step(&m, cores) < 1.0);
            assert!(nyx_slice_step(&m, cores) < 1.0);
        }
        assert!((nyx_plotfile_write(1024, 512) - 17.0).abs() < 3.0);
        assert!((nyx_plotfile_write(2048, 4096) - 80.0).abs() < 10.0);
        assert!((nyx_plotfile_write(4096, 32768) - 312.0).abs() < 30.0);
    }

    #[test]
    fn flexpath_init_cori_vs_titan() {
        // §4.1.4: Titan's reader init is an order of magnitude faster.
        let cori = flexpath_reader_init(&cori(), 45440);
        let titan = flexpath_reader_init(&MachineSpec::titan(), 45440);
        assert!(cori / titan >= 10.0, "ratio {}", cori / titan);
        assert!(cori > 5.0, "Cori endpoint init is seconds: {cori}");
    }

    #[test]
    fn adios_penalty_about_half_for_catalyst_slice() {
        // §4.1.4: ≈50% runtime penalty vs. inline Catalyst-slice. The
        // writer's cost of the staged configuration is transmission plus
        // co-scheduling interference; relative to inlining the same
        // analysis, the slowdown lands near one half.
        let m = cori();
        let (p, cells) = (6496usize, 64 * 64 * 64);
        let inline = catalyst_slice_step(&m, p, cells);
        let staged = adios_staged_step(&m, p, (cells * 8) as f64, inline);
        let penalty = staged / inline;
        assert!((0.35..0.7).contains(&penalty), "penalty {penalty}");
    }

    #[test]
    fn sensei_overhead_is_negligible() {
        let m = cori();
        let sim = oscillator_step(&m, 64 * 64 * 64, 3);
        assert!(sensei_adaptor_overhead() / sim < 1e-4);
    }

    #[test]
    fn slice_participants_is_sheet_of_rank_grid() {
        assert_eq!(slice_participants(64), 16);
        assert!(slice_participants(45440) < 45440 / 10);
    }

    #[test]
    fn breakdown_helper_labels() {
        let m = cori();
        let b = miniapp_step_breakdown(&m, 812, 64 * 64 * 64, 3, 0.05);
        assert!(b.get("simulation") > 0.0);
        assert_eq!(b.get("analysis"), 0.05);
    }
}
