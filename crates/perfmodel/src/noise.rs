//! Deterministic noise for modeled runs.
//!
//! Storage and network performance at scale is noisy (Lofstead et al.
//! document order-unity I/O variability on petascale Lustre). Modeled
//! experiments sample multiplicative lognormal noise from a seeded
//! generator so regenerated figures show realistic scatter *and*
//! reproduce exactly across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded noise source.
pub struct SeededNoise {
    rng: StdRng,
}

impl SeededNoise {
    /// Create from an experiment-specific seed.
    pub fn new(seed: u64) -> Self {
        SeededNoise {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A standard-normal sample (Box–Muller over the uniform generator).
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Multiplicative lognormal factor with median 1 and shape `sigma`.
    /// `sigma = 0` returns exactly 1.
    pub fn lognormal_factor(&mut self, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return 1.0;
        }
        (sigma * self.standard_normal()).exp()
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// Multiplicative factor whose relative spread matches a *measured*
    /// coefficient of variation (`stddev / mean`, e.g. from a
    /// `TimingSummary` or a run report's per-phase `stddev_s /
    /// mean_s`), so modeled reruns carry the jitter an instrumented run
    /// actually observed.
    pub fn lognormal_factor_from_cv(&mut self, cv: f64) -> f64 {
        self.lognormal_factor(sigma_from_cv(cv))
    }
}

/// Lognormal shape parameter whose distribution has coefficient of
/// variation `cv`: `sigma² = ln(1 + cv²)`. Zero or negative spread maps
/// to zero (no noise).
pub fn sigma_from_cv(cv: f64) -> f64 {
    if cv <= 0.0 {
        return 0.0;
    }
    (1.0 + cv * cv).ln().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_noise_is_reproducible() {
        let mut a = SeededNoise::new(42);
        let mut b = SeededNoise::new(42);
        for _ in 0..100 {
            assert_eq!(a.lognormal_factor(0.3), b.lognormal_factor(0.3));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededNoise::new(1);
        let mut b = SeededNoise::new(2);
        let va: Vec<f64> = (0..10).map(|_| a.standard_normal()).collect();
        let vb: Vec<f64> = (0..10).map(|_| b.standard_normal()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zero_sigma_is_exactly_one() {
        let mut n = SeededNoise::new(7);
        for _ in 0..10 {
            assert_eq!(n.lognormal_factor(0.0), 1.0);
        }
    }

    #[test]
    fn lognormal_median_near_one() {
        let mut n = SeededNoise::new(99);
        let mut samples: Vec<f64> = (0..20001).map(|_| n.lognormal_factor(0.5)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut n = SeededNoise::new(123);
        let samples: Vec<f64> = (0..50000).map(|_| n.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn cv_roundtrips_through_the_lognormal_shape() {
        // Sampling with sigma_from_cv(cv) reproduces the measured
        // coefficient of variation.
        let cv_in = 0.4;
        let mut n = SeededNoise::new(2024);
        let samples: Vec<f64> = (0..40000)
            .map(|_| n.lognormal_factor_from_cv(cv_in))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        let cv_out = var.sqrt() / mean;
        assert!((cv_out - cv_in).abs() < 0.02, "cv {cv_out} vs {cv_in}");
    }

    #[test]
    fn degenerate_spread_disables_noise() {
        assert_eq!(sigma_from_cv(0.0), 0.0);
        assert_eq!(sigma_from_cv(-1.0), 0.0);
        let mut n = SeededNoise::new(3);
        assert_eq!(n.lognormal_factor_from_cv(0.0), 1.0);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut n = SeededNoise::new(5);
        for _ in 0..1000 {
            let v = n.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
        }
    }
}
