//! Projection of the measured async-offload overlap to paper-scale
//! concurrencies.
//!
//! The threaded execution mode measures a real overlap efficiency on a
//! handful of ranks (the bridge's `offload/overlap_permille` gauge:
//! device-busy seconds hidden behind the advancing simulation over total
//! device-busy seconds). This module answers the paper-style question —
//! *what does that overlap buy at 45K/262K/1M ranks?* — by combining the
//! measured per-step costs with the α–β collective models:
//!
//! * the analysis's communicator-free **local phase** hides behind the
//!   simulation's advance, up to the advance time;
//! * the **host→device transfer** happens on the rank thread while the
//!   simulation is paused (one payload snapshot per step), so it is
//!   always exposed;
//! * the **sync point** (`complete`'s reduction) is a collective whose
//!   cost grows with ⌈log₂ p⌉ — the same final-reduction weak-scaling
//!   wall the paper's Fig. 12 discussion calls out, and the reason
//!   overlap efficiency *degrades* with scale even though the local
//!   phase is perfectly parallel.

use crate::machine::MachineSpec;
use crate::network;

/// Per-step, per-rank costs of one offloaded analysis pipeline, either
/// measured by the threaded mode or taken from a workload model.
#[derive(Clone, Copy, Debug)]
pub struct OffloadScenario {
    /// Simulation advance time per step, seconds — the window the device
    /// work can hide behind.
    pub sim_step_s: f64,
    /// Device-local analysis time per step, seconds (the worker's
    /// communicator-free phase; the bridge's measured busy seconds per
    /// step feed straight in here).
    pub analysis_local_s: f64,
    /// Publish-window payload snapshot per step, bytes per rank (the
    /// bridge's `space/h2d` counter divided by steps).
    pub payload_bytes: f64,
    /// Bytes each rank contributes to the sync-point reduction (e.g.
    /// histogram bins × 8).
    pub reduction_bytes: f64,
}

/// What the offload executor achieves at a given concurrency.
#[derive(Clone, Copy, Debug)]
pub struct OffloadProjection {
    /// Concurrency the projection is for.
    pub ranks: usize,
    /// Host→device transfer time per step, seconds (always exposed).
    pub transfer_s: f64,
    /// Sync-point collective time per step, seconds (always exposed).
    pub sync_s: f64,
    /// Device-busy seconds hidden behind the simulation per step.
    pub hidden_s: f64,
    /// Offload-attributable time the simulation still waits for per
    /// step: exposed local-phase remainder + transfer + sync.
    pub exposed_s: f64,
    /// Overlap efficiency: hidden over total offload-attributable time
    /// (local + transfer + sync). 1.0 = the analysis is free.
    pub efficiency: f64,
    /// Per-step speedup over running the same pipeline synchronously in
    /// situ (where local, transfer-free, and sync costs all serialize
    /// with the simulation).
    pub step_speedup: f64,
}

/// Project one scenario to `p` ranks on machine `m`.
///
/// The host→device transfer is modeled as one on-node link message (the
/// simulated device shares the NIC's byte rate — a deliberate,
/// conservative stand-in for a PCIe/NVLink term the paper's machines
/// did not have); the sync point is a reduce-plus-broadcast allreduce.
pub fn project(m: &MachineSpec, p: usize, s: &OffloadScenario) -> OffloadProjection {
    let transfer_s = if s.payload_bytes > 0.0 {
        network::p2p(m, s.payload_bytes)
    } else {
        0.0
    };
    let sync_s = network::allreduce(m, p, s.reduction_bytes);
    let hidden_s = s.analysis_local_s.min(s.sim_step_s);
    let exposed_local = (s.analysis_local_s - s.sim_step_s).max(0.0);
    let exposed_s = exposed_local + transfer_s + sync_s;
    let total = s.analysis_local_s + transfer_s + sync_s;
    let efficiency = if total > 0.0 { hidden_s / total } else { 0.0 };
    let step_sync = s.sim_step_s + s.analysis_local_s + sync_s;
    let step_async = s.sim_step_s + exposed_s;
    OffloadProjection {
        ranks: p,
        transfer_s,
        sync_s,
        hidden_s,
        exposed_s,
        efficiency,
        step_speedup: if step_async > 0.0 {
            step_sync / step_async
        } else {
            1.0
        },
    }
}

/// Sweep a scenario across the paper's study concurrencies, smallest
/// first (812 → 45,440 Cori cores, and onward to Mira-scale ranks).
pub fn sweep(m: &MachineSpec, ranks: &[usize], s: &OffloadScenario) -> Vec<OffloadProjection> {
    ranks.iter().map(|&p| project(m, p, s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> OffloadScenario {
        OffloadScenario {
            sim_step_s: 0.5,
            analysis_local_s: 0.2,
            payload_bytes: 64.0 * 1e6,
            reduction_bytes: 8.0 * 128.0,
        }
    }

    #[test]
    fn fully_hidden_local_phase_approaches_transfer_bound() {
        let m = MachineSpec::cori_haswell();
        let p = project(&m, 812, &scenario());
        // Local phase fits inside the advance window: all of it hides.
        assert_eq!(p.hidden_s, 0.2);
        assert!(p.efficiency > 0.8, "efficiency {}", p.efficiency);
        assert!(p.step_speedup > 1.0);
    }

    #[test]
    fn efficiency_degrades_with_scale() {
        let m = MachineSpec::mira_bgq();
        let s = scenario();
        let sw = sweep(&m, &[1 << 10, 1 << 14, 1 << 18, 1 << 20], &s);
        assert!(
            sw.windows(2).all(|w| w[1].efficiency <= w[0].efficiency),
            "sync-point collectives must erode overlap monotonically"
        );
        // But even at 1M ranks the log-depth reduction leaves most of
        // the local phase hidden.
        assert!(sw.last().unwrap().efficiency > 0.5);
    }

    #[test]
    fn oversized_analysis_exposes_the_remainder() {
        let m = MachineSpec::cori_haswell();
        let s = OffloadScenario {
            sim_step_s: 0.1,
            analysis_local_s: 0.4,
            ..scenario()
        };
        let p = project(&m, 4096, &s);
        assert_eq!(p.hidden_s, 0.1);
        assert!(p.exposed_s > 0.3, "remainder 0.3 s is exposed");
        // Still faster than synchronous: 0.1 s of hiding is 0.1 s saved.
        assert!(p.step_speedup > 1.0);
    }

    #[test]
    fn zero_payload_costs_no_transfer() {
        let m = MachineSpec::titan();
        let s = OffloadScenario {
            payload_bytes: 0.0,
            ..scenario()
        };
        assert_eq!(project(&m, 1024, &s).transfer_s, 0.0);
    }
}
