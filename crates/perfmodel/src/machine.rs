//! Machine specifications for the three platforms the paper uses.
//!
//! Every field is a *calibration constant*. Where the paper prints a
//! number (Table 1 write times, Libsim's ~3.5 s init at 45K, PHASTA's
//! Table 2), constants are chosen so the models land on it; elsewhere the
//! values come from published hardware characteristics of the machines.

/// Interpolation table: piecewise log-linear `y(x)` through calibration
/// points, clamped at the ends. Storage systems (metadata servers
/// especially) have empirically non-monotone throughput curves, so a
/// table beats any smooth closed form.
#[derive(Clone, Debug)]
pub struct CalibTable {
    /// `(x, y)` anchor points with strictly increasing `x`.
    pub points: Vec<(f64, f64)>,
}

impl CalibTable {
    /// Build from anchors; panics on unordered or empty input.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "calibration table needs points");
        assert!(
            points.windows(2).all(|w| w[1].0 > w[0].0),
            "calibration x values must be strictly increasing"
        );
        CalibTable { points }
    }

    /// Evaluate at `x` with log-x linear interpolation, clamped outside
    /// the anchor range.
    pub fn eval(&self, x: f64) -> f64 {
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        if x >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        for w in pts.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if x <= x1 {
                let t = (x.ln() - x0.ln()) / (x1.ln() - x0.ln());
                return y0 + t * (y1 - y0);
            }
        }
        unreachable!("x within range must hit a segment")
    }
}

/// Calibrated description of one HPC platform.
#[derive(Clone, Debug)]
pub struct MachineSpec {
    /// Human-readable name ("cori-haswell", …).
    pub name: &'static str,
    /// Cores per compute node.
    pub cores_per_node: usize,
    /// Memory per node in bytes.
    pub mem_per_node: f64,
    /// Effective per-core cell-update throughput scale relative to a Cori
    /// Haswell core (BG/Q cores are much slower per core).
    pub core_speed: f64,
    /// Point-to-point latency, seconds (network α).
    pub net_alpha: f64,
    /// Per-link bandwidth, bytes/second (network 1/β).
    pub net_bw: f64,
    /// Per-stage synchronization-skew cost for image compositing at
    /// scale, seconds; captures OS jitter and stage barriers.
    pub composite_stage_alpha: f64,
    /// Effective per-rank compositing bandwidth, bytes/second — the rate
    /// the pixel traffic of a compositing stage actually achieves with
    /// many ranks per node sharing links.
    pub composite_bw: f64,
    /// Metadata-server file-create throughput (files/s) as a function of
    /// simultaneous file count; calibrated to Table 1's VTK I/O column.
    pub mds_create_rate: CalibTable,
    /// Metadata-server stat/open throughput (files/s) — Libsim's per-rank
    /// config check (~3.5 s at 45,440 ranks ⇒ ~13 K stats/s).
    pub mds_stat_rate: f64,
    /// Aggregate streaming write bandwidth of the parallel FS, bytes/s.
    pub fs_agg_bw: f64,
    /// Effective collective (MPI-IO, shared-file) write bandwidth,
    /// bytes/s; calibrated to Table 1's MPI-IO column (~5.2 GB/s).
    pub fs_collective_bw: f64,
    /// Per-reader effective read bandwidth, bytes/s (post hoc reads).
    pub fs_read_bw_per_reader: f64,
    /// Cap on aggregate read bandwidth under shared-system contention.
    pub fs_read_agg_cap: f64,
    /// Lognormal sigma of storage interference (Lofstead variability).
    pub io_noise_sigma: f64,
    /// Per-connection staging-endpoint setup cost, seconds (Fig. 9's
    /// Cori reader-init; "an order of magnitude lower" on Titan).
    pub staging_connect_cost: f64,
    /// Serial zlib DEFLATE throughput on one core, bytes/s — the PNG
    /// compression of Table 2's discussion (rank-0 serial).
    pub zlib_bw: f64,
}

impl MachineSpec {
    /// Cori Phase I (Cray XC40, Haswell, Aries dragonfly, Lustre):
    /// platform of the miniapplication and Nyx studies.
    pub fn cori_haswell() -> Self {
        MachineSpec {
            name: "cori-haswell",
            cores_per_node: 32,
            mem_per_node: 128e9,
            core_speed: 1.0,
            net_alpha: 1.5e-6,
            net_bw: 8e9,
            composite_stage_alpha: 8e-3,
            composite_bw: 120e6,
            // Anchors solve Table 1's VTK column with fs_agg_bw below:
            //   812 files → 0.12 s, 6 496 → 0.67 s, 45 440 → 9.05 s.
            mds_create_rate: CalibTable::new(vec![
                (812.0, 6940.0),
                (6496.0, 10070.0),
                (45440.0, 5130.0),
            ]),
            mds_stat_rate: 13000.0,
            fs_agg_bw: 650e9,
            fs_collective_bw: 5.2e9,
            fs_read_bw_per_reader: 50e6,
            fs_read_agg_cap: 60e9,
            io_noise_sigma: 0.35,
            staging_connect_cost: 2.2e-4,
            zlib_bw: 30.0e6,
        }
    }

    /// Mira (IBM Blue Gene/Q, GPFS): platform of the PHASTA runs. Slow
    /// cores, many ranks per node, 5D torus.
    pub fn mira_bgq() -> Self {
        MachineSpec {
            name: "mira-bgq",
            cores_per_node: 16,
            mem_per_node: 16e9,
            core_speed: 0.25,
            net_alpha: 2.5e-6,
            net_bw: 2e9,
            // Solve Table 2: composite(262144, 0.48 MB)≈1.16 s and
            // composite(262144, 6.3 MB)≈2.1 s ⇒ α≈0.06 s/stage,
            // bw≈12.4 MB/s effective with 32–64 ranks/node.
            composite_stage_alpha: 0.06,
            composite_bw: 12.4e6,
            mds_create_rate: CalibTable::new(vec![(1000.0, 4000.0), (1e6, 2000.0)]),
            mds_stat_rate: 8000.0,
            fs_agg_bw: 240e9,
            fs_collective_bw: 3.0e9,
            fs_read_bw_per_reader: 40e6,
            fs_read_agg_cap: 30e9,
            io_noise_sigma: 0.25,
            staging_connect_cost: 2.0e-5,
            // Anchored to Table 2's discussion: skipping PNG compression
            // dropped an 8-process toy from 4.03 s to 0.518 s per step on
            // a 2900×725 image ⇒ ≈3.5 s for 6.3 MB ⇒ ≈2 MB/s serial.
            zlib_bw: 2.2e6,
        }
    }

    /// Titan (Cray XK7, Gemini, Lustre/Spider): platform of the
    /// AVF-LESLIE runs and the fast-staging-init observation.
    pub fn titan() -> Self {
        MachineSpec {
            name: "titan",
            cores_per_node: 16,
            mem_per_node: 32e9,
            core_speed: 0.6,
            net_alpha: 1.8e-6,
            net_bw: 5e9,
            composite_stage_alpha: 2.2e-2,
            composite_bw: 60e6,
            mds_create_rate: CalibTable::new(vec![(1000.0, 5000.0), (131072.0, 3500.0)]),
            mds_stat_rate: 10000.0,
            fs_agg_bw: 500e9,
            fs_collective_bw: 4.0e9,
            fs_read_bw_per_reader: 45e6,
            fs_read_agg_cap: 50e9,
            io_noise_sigma: 0.3,
            staging_connect_cost: 2.0e-5,
            zlib_bw: 3.0e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calib_table_interpolates_and_clamps() {
        let t = CalibTable::new(vec![(10.0, 1.0), (1000.0, 3.0)]);
        assert_eq!(t.eval(1.0), 1.0); // clamp low
        assert_eq!(t.eval(1e6), 3.0); // clamp high
        let mid = t.eval(100.0); // halfway in log space
        assert!((mid - 2.0).abs() < 1e-9, "got {mid}");
    }

    #[test]
    fn calib_table_hits_anchors() {
        let t = MachineSpec::cori_haswell().mds_create_rate;
        assert!((t.eval(812.0) - 6940.0).abs() < 1.0);
        assert!((t.eval(45440.0) - 5130.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unordered_anchors_panic() {
        let _ = CalibTable::new(vec![(5.0, 1.0), (2.0, 2.0)]);
    }

    #[test]
    fn machines_have_distinct_characters() {
        let cori = MachineSpec::cori_haswell();
        let mira = MachineSpec::mira_bgq();
        let titan = MachineSpec::titan();
        // BG/Q cores are slowest; Cori fastest.
        assert!(mira.core_speed < titan.core_speed);
        assert!(titan.core_speed < cori.core_speed);
        // Titan staging connects an order of magnitude faster than Cori
        // (paper §4.1.4).
        assert!(cori.staging_connect_cost / titan.staging_connect_cost >= 10.0);
    }
}
