//! # perfmodel — machine and cost models for extreme-scale regeneration
//!
//! The paper's studies run at 812–45,440 cores on Cori, 262,144–1,048,576
//! MPI ranks on Mira, and 8,192–131,072 cores on Titan. Those
//! concurrencies cannot be executed as threads on one box, so this crate
//! provides the *modeled* execution mode described in DESIGN.md:
//!
//! * [`MachineSpec`] — per-platform constants (core speed, network α/β,
//!   metadata-server throughput, aggregate bandwidths, compositing
//!   effective rates) for `cori_haswell()`, `mira_bgq()`, `titan()`;
//! * [`network`] — α–β cost models for the collectives the analyses use;
//! * [`storage`] — Lustre/GPFS-shaped file-per-rank, collective, and read
//!   models with Lofstead-style lognormal interference;
//! * [`compositing`] — binary-swap and direct-send image compositing;
//! * [`workloads`] — per-application per-timestep cost models (oscillator
//!   miniapp, PHASTA, AVF-LESLIE, Nyx) calibrated to the paper's reported
//!   anchors;
//! * [`memory`] — executable and heap footprint models for the memory
//!   studies (Figs. 4, 7 and the PHASTA/Nyx executable-size notes);
//! * [`offload`] — projection of the measured async-offload overlap
//!   efficiency to paper-scale concurrencies (the sync-point collective
//!   erodes overlap logarithmically with rank count);
//! * [`noise`] — deterministic seeded noise so regenerated charts carry
//!   realistic run-to-run variability yet reproduce bit-for-bit.
//!
//! Constants are *calibrations*, not first-principles predictions: each is
//! anchored either to a number printed in the paper (e.g. Table 1's write
//! times, Table 2's PHASTA in situ costs) or to a real measurement from
//! the threaded execution mode. EXPERIMENTS.md records the resulting
//! paper-vs-model comparison for every figure.

pub mod breakdown;
pub mod compositing;
pub mod machine;
pub mod memory;
pub mod network;
pub mod noise;
pub mod offload;
pub mod storage;
pub mod workloads;

pub use breakdown::Breakdown;
pub use machine::MachineSpec;
pub use noise::SeededNoise;

/// Gigabyte in bytes, used throughout the models.
pub const GB: f64 = 1e9;
/// Megabyte in bytes.
pub const MB: f64 = 1e6;

/// log2 of a rank count, as the (integer, ceiling) number of tree stages.
pub fn stages(p: usize) -> f64 {
    if p <= 1 {
        0.0
    } else {
        ((p as f64).log2()).ceil()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_edge_cases() {
        assert_eq!(stages(1), 0.0);
        assert_eq!(stages(2), 1.0);
        assert_eq!(stages(3), 2.0);
        assert_eq!(stages(1024), 10.0);
        assert_eq!(stages(1 << 20), 20.0);
    }
}
