//! Memory-footprint models for the paper's memory studies.
//!
//! Fig. 4 compares total (summed over ranks) high-water marks of the
//! Original vs. SENSEI-instrumented autocorrelation runs; Fig. 7 breaks
//! startup executable footprint out from the run high-water mark per
//! configuration. §4.2 adds executable-size observations (Catalyst
//! Editions: 153 MB static / 87 MB dynamic with PHASTA; Nyx 68 → 109 MB).

use crate::workloads::slice_participants;
use crate::MB;

/// Executable / resident-image sizes in bytes for each configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Executable {
    /// Miniapp without SENSEI.
    Original,
    /// Miniapp with the SENSEI interface linked (no analysis libraries).
    Baseline,
    /// Baseline + the direct histogram/autocorrelation analyses.
    DirectAnalysis,
    /// Baseline + Catalyst Edition (statically linked, incl. OSMesa).
    CatalystStatic,
    /// Baseline + Catalyst Edition, dynamically linked.
    CatalystDynamic,
    /// Baseline + Libsim runtime.
    Libsim,
    /// Baseline + ADIOS/FlexPath transport.
    Adios,
}

impl Executable {
    /// Per-rank resident image size in bytes.
    pub fn bytes(self) -> f64 {
        match self {
            // The Original configuration links the same analysis code via
            // direct subroutine calls (§4.1.1), so its image differs from
            // DirectAnalysis only by the thin SENSEI layer.
            Executable::Original => 6.5 * MB,
            Executable::Baseline => 6.0 * MB,
            Executable::DirectAnalysis => 7.0 * MB,
            // §4.2.1: 153 MB static, 87 MB dynamic (Catalyst Edition).
            Executable::CatalystStatic => 153.0 * MB,
            Executable::CatalystDynamic => 87.0 * MB,
            Executable::Libsim => 120.0 * MB,
            Executable::Adios => 14.0 * MB,
        }
    }
}

/// Per-rank heap bytes of the miniapp's own state (subgrid + oscillator
/// table).
pub fn miniapp_heap(cells_per_rank: usize, num_oscillators: usize) -> f64 {
    (cells_per_rank * 8 + num_oscillators * 64) as f64
}

/// Per-rank heap of the autocorrelation analysis: two circular buffers of
/// `window` timesteps each (§3.3: "two circular buffers, each of size
/// O(tN³)").
pub fn autocorrelation_heap(cells_per_rank: usize, window: usize) -> f64 {
    2.0 * (cells_per_rank * window * 8) as f64
}

/// Per-rank heap of the histogram analysis (just the bins).
pub fn histogram_heap(bins: usize) -> f64 {
    (bins * 8 + 64) as f64
}

/// Heap of a slice-render pipeline, averaged across ranks: participating
/// ranks hold framebuffer + depth + extracted geometry; others nothing.
pub fn slice_render_heap_avg(p: usize, width: usize, height: usize) -> f64 {
    let per_participant = (width * height * (4 + 4)) as f64 * 2.0; // color+depth, double-buffered
    let participants = slice_participants(p) as f64;
    per_participant * participants / p as f64
}

/// Per-rank staging buffer of the (non-zero-copy) FlexPath transport.
pub fn flexpath_heap(bytes_per_rank: f64) -> f64 {
    2.0 * bytes_per_rank // pinned send buffer + marshaling copy
}

/// Total memory high-water mark summed over `p` ranks, the quantity the
/// miniapp study charts.
pub fn total_high_water(p: usize, exe: Executable, per_rank_heap: f64) -> f64 {
    p as f64 * (exe.bytes() + per_rank_heap)
}

/// Nyx executable sizes (§4.2.3): baseline 68 MB, with SENSEI 109 MB.
pub fn nyx_executable(with_sensei: bool) -> f64 {
    if with_sensei {
        109.0 * MB
    } else {
        68.0 * MB
    }
}

/// Nyx per-rank analysis memory overhead: the ghost-flag byte array
/// (~2 MB/rank, §4.2.3) plus, for the slice, 200–300 MB of pipeline
/// buffers spread over participating ranks.
pub fn nyx_analysis_heap(slice: bool) -> f64 {
    let ghosts = 2.0 * MB;
    if slice {
        ghosts + 250.0 * MB
    } else {
        ghosts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::miniapp_scales;

    #[test]
    fn executable_sizes_match_paper_notes() {
        assert_eq!(Executable::CatalystStatic.bytes(), 153.0 * MB);
        assert_eq!(Executable::CatalystDynamic.bytes(), 87.0 * MB);
        assert!((nyx_executable(true) - 109.0 * MB).abs() < 1.0);
        assert!((nyx_executable(false) - 68.0 * MB).abs() < 1.0);
    }

    #[test]
    fn fig4_original_vs_sensei_autocorrelation_equal() {
        // Zero-copy interface ⇒ the two configurations' footprints are
        // the same analysis buffers + grid; only the executable differs
        // by the thin SENSEI layer.
        for (p, cells) in miniapp_scales() {
            let heap = miniapp_heap(cells, 3) + autocorrelation_heap(cells, 10);
            let original = total_high_water(p, Executable::Original, heap);
            let sensei = total_high_water(p, Executable::DirectAnalysis, heap);
            let rel = (sensei - original) / original;
            assert!(rel > 0.0 && rel < 0.02, "relative overhead {rel}");
        }
    }

    #[test]
    fn autocorrelation_dominates_miniapp_heap() {
        // Window-10 history is 20× the field itself.
        let cells = 64 * 64 * 64;
        assert!(autocorrelation_heap(cells, 10) > 10.0 * miniapp_heap(cells, 3));
    }

    #[test]
    fn histogram_heap_is_tiny() {
        assert!(histogram_heap(256) < 1e4);
    }

    #[test]
    fn memory_grows_linearly_with_ranks() {
        let heap = miniapp_heap(64 * 64 * 64, 3);
        let a = total_high_water(812, Executable::Baseline, heap);
        let b = total_high_water(6496, Executable::Baseline, heap);
        assert!((b / a - 8.0).abs() < 0.1);
    }

    #[test]
    fn slice_render_heap_concentrated_on_participants() {
        let avg = slice_render_heap_avg(45440, 1920, 1080);
        // Much smaller than a full per-rank framebuffer.
        assert!(avg < (1920 * 1080 * 8) as f64);
        assert!(avg > 0.0);
    }
}
