//! α–β cost models for the collective operations the in situ analyses
//! issue. `α` is the per-message latency, `β = 1/bw` the per-byte cost;
//! stage counts follow the classic tree/ring algorithms (the same ones
//! `minimpi` actually implements, keeping real and modeled modes
//! structurally aligned).

use crate::machine::MachineSpec;
use crate::stages;

/// One point-to-point message of `bytes`.
pub fn p2p(m: &MachineSpec, bytes: f64) -> f64 {
    m.net_alpha + bytes / m.net_bw
}

/// Dissemination barrier: ⌈log₂ p⌉ rounds of small messages.
pub fn barrier(m: &MachineSpec, p: usize) -> f64 {
    stages(p) * (m.net_alpha + 64.0 / m.net_bw)
}

/// Binomial-tree broadcast of `bytes` to `p` ranks.
pub fn bcast(m: &MachineSpec, p: usize, bytes: f64) -> f64 {
    stages(p) * p2p(m, bytes)
}

/// Binomial-tree reduction of `bytes` with per-byte combine cost folded
/// into an effective 2× byte term (receive + combine).
pub fn reduce(m: &MachineSpec, p: usize, bytes: f64) -> f64 {
    stages(p) * (m.net_alpha + 2.0 * bytes / m.net_bw)
}

/// Reduce-then-broadcast allreduce (the BSP pattern of the analyses; the
/// paper's Fig. 12 discussion calls out the final-reduction weak-scaling
/// cost of exactly this shape).
pub fn allreduce(m: &MachineSpec, p: usize, bytes: f64) -> f64 {
    reduce(m, p, bytes) + bcast(m, p, bytes)
}

/// Flat gather of `bytes_per_rank` from `p` ranks to a root: the root's
/// ingest serializes on its link.
pub fn gather(m: &MachineSpec, p: usize, bytes_per_rank: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    m.net_alpha * stages(p) + (p as f64 - 1.0) * bytes_per_rank / m.net_bw
}

/// Halo (ghost) exchange with `neighbors` faces of `bytes` each; the
/// exchanges overlap pairwise so cost is one round per neighbor pair.
pub fn halo_exchange(m: &MachineSpec, neighbors: usize, bytes: f64) -> f64 {
    neighbors as f64 * p2p(m, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cori() -> MachineSpec {
        MachineSpec::cori_haswell()
    }

    #[test]
    fn p2p_scales_with_bytes() {
        let m = cori();
        assert!(p2p(&m, 1e9) > p2p(&m, 1e3));
        assert!((p2p(&m, 0.0) - m.net_alpha).abs() < 1e-15);
    }

    #[test]
    fn collectives_grow_logarithmically() {
        let m = cori();
        let t1k = allreduce(&m, 1024, 8.0);
        let t1m = allreduce(&m, 1 << 20, 8.0);
        // 2× the stages, not 1024× the time.
        assert!(t1m / t1k < 2.2, "ratio {}", t1m / t1k);
        assert!(t1m > t1k);
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let m = cori();
        assert_eq!(barrier(&m, 1), 0.0);
        assert_eq!(bcast(&m, 1, 1e6), 0.0);
        assert_eq!(gather(&m, 1, 1e6), 0.0);
    }

    #[test]
    fn gather_is_root_bound() {
        let m = cori();
        // Doubling ranks nearly doubles root ingest time for fixed
        // per-rank bytes.
        let a = gather(&m, 1000, 1e6);
        let b = gather(&m, 2000, 1e6);
        assert!(b / a > 1.8 && b / a < 2.2, "ratio {}", b / a);
    }

    #[test]
    fn allreduce_exceeds_reduce() {
        let m = cori();
        assert!(allreduce(&m, 4096, 1e4) > reduce(&m, 4096, 1e4));
    }
}
