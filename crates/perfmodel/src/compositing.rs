//! Image-compositing cost models.
//!
//! Catalyst and Libsim render locally and then composite partial images
//! across all ranks; the paper notes the two use *different* compositing
//! algorithms with visibly different scaling (Fig. 6) and that
//! compositing involves "communication of image-sized buffers among a
//! hierarchical set of ranks". We model the two classic families:
//!
//! * **binary swap** (Catalyst-like): log₂p stages, each exchanging half
//!   the remaining image; total pixel traffic per rank ≈ `2·I·(p−1)/p`;
//! * **direct-send tree** (Libsim-like): a fan-in tree of arity `f`;
//!   every level's receiver ingests `f` full images.
//!
//! The per-stage `composite_stage_alpha` captures the synchronization
//! skew that dominates at hundreds of thousands of ranks (Table 2's
//! PHASTA numbers anchor the Mira constants).

use crate::machine::MachineSpec;
use crate::stages;

/// Compositing algorithm family.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algorithm {
    /// Binary swap (Catalyst-like).
    BinarySwap,
    /// Direct-send fan-in tree with the given arity (Libsim-like).
    DirectSendTree {
        /// Fan-in per tree level.
        fanout: usize,
    },
}

/// Seconds to composite an `image_bytes` framebuffer across `p` ranks.
pub fn composite(m: &MachineSpec, alg: Algorithm, p: usize, image_bytes: f64) -> f64 {
    if p <= 1 {
        // Single rank: just the local blend-over pass.
        return image_bytes / (10.0 * m.composite_bw);
    }
    match alg {
        Algorithm::BinarySwap => {
            let l = stages(p);
            let traffic = 2.0 * image_bytes * (p as f64 - 1.0) / p as f64;
            l * m.composite_stage_alpha + traffic / m.composite_bw
        }
        Algorithm::DirectSendTree { fanout } => {
            assert!(fanout >= 2, "tree fanout must be >= 2");
            let depth = (p as f64).log(fanout as f64).ceil();
            depth * (m.composite_stage_alpha + fanout as f64 * image_bytes / m.composite_bw)
        }
    }
}

/// Bytes of an RGBA8 framebuffer.
pub fn rgba_bytes(width: usize, height: usize) -> f64 {
    (width * height * 4) as f64
}

/// Bytes of an RGB8 framebuffer (what the PNG writer consumes).
pub fn rgb_bytes(width: usize, height: usize) -> f64 {
    (width * height * 3) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_phasta_composite_anchors() {
        // Mira, binary swap. Table 2's per-step in situ cost decomposes
        // as composite + serial PNG deflate (~2.2 MB/s on a BG/Q core);
        // the composite share is ≈1.16 s for IS1 and ≈2.1 s for IS2.
        let m = MachineSpec::mira_bgq();
        let is1 = composite(&m, Algorithm::BinarySwap, 262_144, rgb_bytes(800, 200));
        let is2 = composite(&m, Algorithm::BinarySwap, 262_144, rgb_bytes(2900, 725));
        assert!((is1 - 1.16).abs() < 0.15, "IS1 composite {is1}");
        assert!((is2 - 2.1).abs() < 0.3, "IS2 composite {is2}");
    }

    #[test]
    fn bigger_images_cost_more() {
        let m = MachineSpec::cori_haswell();
        let small = composite(&m, Algorithm::BinarySwap, 4096, rgba_bytes(800, 200));
        let large = composite(&m, Algorithm::BinarySwap, 4096, rgba_bytes(2900, 725));
        assert!(large > small);
    }

    #[test]
    fn scaling_is_logarithmic_not_linear() {
        let m = MachineSpec::cori_haswell();
        let t1k = composite(&m, Algorithm::BinarySwap, 1024, rgba_bytes(1920, 1080));
        let t45k = composite(&m, Algorithm::BinarySwap, 45440, rgba_bytes(1920, 1080));
        assert!(t45k > t1k);
        assert!(t45k / t1k < 3.0, "ratio {}", t45k / t1k);
    }

    #[test]
    fn algorithms_scale_differently() {
        // The Fig. 6 observation: the two infrastructures' compositors
        // have visibly different scaling characteristics.
        let m = MachineSpec::cori_haswell();
        let bytes = rgba_bytes(1600, 1600);
        let bs: Vec<f64> = [812usize, 6496, 45440]
            .iter()
            .map(|&p| composite(&m, Algorithm::BinarySwap, p, bytes))
            .collect();
        let ds: Vec<f64> = [812usize, 6496, 45440]
            .iter()
            .map(|&p| composite(&m, Algorithm::DirectSendTree { fanout: 8 }, p, bytes))
            .collect();
        // Both grow with scale …
        assert!(bs.windows(2).all(|w| w[1] > w[0]));
        assert!(ds.windows(2).all(|w| w[1] > w[0]));
        // … but with different slopes.
        let bs_growth = bs[2] / bs[0];
        let ds_growth = ds[2] / ds[0];
        assert!((bs_growth - ds_growth).abs() > 0.05);
    }

    #[test]
    fn single_rank_is_cheap() {
        let m = MachineSpec::cori_haswell();
        let t = composite(&m, Algorithm::BinarySwap, 1, rgba_bytes(1920, 1080));
        assert!(t < 0.05);
    }

    #[test]
    #[should_panic(expected = "fanout must be >= 2")]
    fn degenerate_fanout_panics() {
        let m = MachineSpec::cori_haswell();
        composite(&m, Algorithm::DirectSendTree { fanout: 1 }, 16, 1e6);
    }
}
