//! Parallel-filesystem cost models: the post hoc side of the paper's
//! comparison (Table 1, Figs. 10–11) and the science apps' plot-file
//! writes.

use crate::machine::MachineSpec;
use crate::noise::SeededNoise;

/// One timestep's file-per-rank write (the paper's "multi-file VTK I/O"):
/// every rank creates one file, so the metadata server's create
/// throughput dominates; the streaming term rides the aggregate
/// bandwidth. Calibrated to Table 1's VTK column.
pub fn file_per_rank_write(m: &MachineSpec, files: usize, total_bytes: f64) -> f64 {
    let create = files as f64 / m.mds_create_rate.eval(files as f64);
    let stream = total_bytes / m.fs_agg_bw;
    create + stream
}

/// One timestep's collective shared-file write (the paper's "vanilla
/// MPI-IO" with `MPI_File_write_all` and recommended striping): stripe
/// lock serialization caps effective bandwidth regardless of writer
/// count. Calibrated to Table 1's MPI-IO column (~5.2 GB/s on Cori).
pub fn collective_write(m: &MachineSpec, total_bytes: f64) -> f64 {
    total_bytes / m.fs_collective_bw
}

/// Post hoc read of `total_bytes` by `readers` ranks (the paper uses 10%
/// of the write concurrency). Aggregate bandwidth is the lesser of the
/// readers' summed streams and the shared-system cap; `noise` applies the
/// Lofstead-style interference factor that makes Fig. 11's bars so
/// variable.
pub fn posthoc_read(
    m: &MachineSpec,
    readers: usize,
    total_bytes: f64,
    noise: &mut SeededNoise,
) -> f64 {
    assert!(readers > 0, "need at least one reader");
    let agg = (readers as f64 * m.fs_read_bw_per_reader).min(m.fs_read_agg_cap);
    (total_bytes / agg) * noise.lognormal_factor(m.io_noise_sigma)
}

/// Write time of a science-app plot file (Nyx writes ~8 variables per
/// checkpoint as one collective dump).
pub fn plotfile_write(m: &MachineSpec, total_bytes: f64) -> f64 {
    collective_write(m, total_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GB;

    fn cori() -> MachineSpec {
        MachineSpec::cori_haswell()
    }

    /// Table 1, VTK I/O column: 0.12 s / 0.67 s / 9.05 s.
    #[test]
    fn table1_vtk_column_anchors() {
        let m = cori();
        let t812 = file_per_rank_write(&m, 812, 2.0 * GB);
        let t6496 = file_per_rank_write(&m, 6496, 16.0 * GB);
        let t45440 = file_per_rank_write(&m, 45440, 123.0 * GB);
        assert!((t812 - 0.12).abs() < 0.02, "812: {t812}");
        assert!((t6496 - 0.67).abs() < 0.05, "6496: {t6496}");
        assert!((t45440 - 9.05).abs() < 0.5, "45440: {t45440}");
    }

    /// Table 1, MPI-IO column: 0.40 s / 3.17 s / 22.87 s.
    #[test]
    fn table1_mpiio_column_anchors() {
        let m = cori();
        assert!((collective_write(&m, 2.0 * GB) - 0.40).abs() < 0.05);
        assert!((collective_write(&m, 16.0 * GB) - 3.17).abs() < 0.15);
        assert!((collective_write(&m, 123.0 * GB) - 22.87).abs() < 1.0);
    }

    /// The paper's headline: MPI-IO is slower than file-per-rank VTK I/O
    /// at every scale studied.
    #[test]
    fn mpiio_slower_than_file_per_rank() {
        let m = cori();
        for (files, gb) in [(812usize, 2.0), (6496, 16.0), (45440, 123.0)] {
            let vtk = file_per_rank_write(&m, files, gb * GB);
            let mpiio = collective_write(&m, gb * GB);
            assert!(mpiio > vtk, "files={files}: vtk={vtk} mpiio={mpiio}");
        }
    }

    #[test]
    fn read_noise_is_multiplicative_and_seeded() {
        let m = cori();
        let mut n1 = SeededNoise::new(3);
        let mut n2 = SeededNoise::new(3);
        let a = posthoc_read(&m, 82, 200.0 * GB, &mut n1);
        let b = posthoc_read(&m, 82, 200.0 * GB, &mut n2);
        assert_eq!(a, b);
        assert!(a > 0.0);
    }

    #[test]
    fn read_aggregate_cap_binds_at_scale() {
        let m = cori();
        let noise = SeededNoise::new(0);
        // With 4545 readers the per-reader sum exceeds the cap, so time
        // is bytes/cap-shaped: doubling readers doesn't halve time.
        let t1 = posthoc_read(&m, 4545, 12.3e12, &mut SeededNoise::new(1));
        let t2 = posthoc_read(&m, 9090, 12.3e12, &mut SeededNoise::new(1));
        assert!((t1 - t2).abs() / t1 < 0.01, "cap should bind: {t1} vs {t2}");
        let _ = noise;
    }

    #[test]
    #[should_panic(expected = "at least one reader")]
    fn zero_readers_panics() {
        let m = cori();
        posthoc_read(&m, 0, 1.0, &mut SeededNoise::new(0));
    }
}
