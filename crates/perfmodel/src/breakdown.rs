//! Labeled time breakdowns — the stacked-bar decomposition every figure
//! in the paper reports (simulation / analysis / read / write / …).

/// An ordered list of `(label, seconds)` parts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Breakdown {
    parts: Vec<(String, f64)>,
}

impl Breakdown {
    /// Empty breakdown.
    pub fn new() -> Self {
        Breakdown { parts: Vec::new() }
    }

    /// Add `seconds` under `label`, merging with an existing label.
    pub fn add(&mut self, label: impl Into<String>, seconds: f64) {
        let label = label.into();
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "breakdown part '{label}' must be a finite non-negative time, got {seconds}"
        );
        if let Some(p) = self.parts.iter_mut().find(|(l, _)| *l == label) {
            p.1 += seconds;
        } else {
            self.parts.push((label, seconds));
        }
    }

    /// Builder-style [`Breakdown::add`].
    pub fn with(mut self, label: impl Into<String>, seconds: f64) -> Self {
        self.add(label, seconds);
        self
    }

    /// Seconds recorded under `label` (0 when absent).
    pub fn get(&self, label: &str) -> f64 {
        self.parts
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| *s)
            .unwrap_or(0.0)
    }

    /// Sum of all parts.
    pub fn total(&self) -> f64 {
        self.parts.iter().map(|(_, s)| s).sum()
    }

    /// Iterate parts in insertion order.
    pub fn parts(&self) -> impl Iterator<Item = (&str, f64)> {
        self.parts.iter().map(|(l, s)| (l.as_str(), *s))
    }

    /// Scale every part by `factor` (e.g. per-step → per-run).
    pub fn scaled(&self, factor: f64) -> Breakdown {
        Breakdown {
            parts: self
                .parts
                .iter()
                .map(|(l, s)| (l.clone(), s * factor))
                .collect(),
        }
    }

    /// Merge another breakdown into this one, label-wise.
    pub fn merge(&mut self, other: &Breakdown) {
        for (l, s) in other.parts() {
            self.add(l, s);
        }
    }
}

impl std::fmt::Display for Breakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (l, s) in self.parts() {
            if !first {
                write!(f, "  ")?;
            }
            write!(f, "{l}={s:.4}s")?;
            first = false;
        }
        write!(f, "  total={:.4}s", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_merges_labels() {
        let mut b = Breakdown::new();
        b.add("sim", 1.0);
        b.add("analysis", 0.5);
        b.add("sim", 0.25);
        assert_eq!(b.get("sim"), 1.25);
        assert_eq!(b.total(), 1.75);
        assert_eq!(b.parts().count(), 2);
    }

    #[test]
    fn missing_label_is_zero() {
        assert_eq!(Breakdown::new().get("nope"), 0.0);
    }

    #[test]
    fn scaled_multiplies_everything() {
        let b = Breakdown::new().with("a", 2.0).with("b", 3.0);
        let s = b.scaled(10.0);
        assert_eq!(s.get("a"), 20.0);
        assert_eq!(s.total(), 50.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Breakdown::new().with("x", 1.0);
        let b = Breakdown::new().with("x", 2.0).with("y", 3.0);
        a.merge(&b);
        assert_eq!(a.get("x"), 3.0);
        assert_eq!(a.get("y"), 3.0);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_time_rejected() {
        Breakdown::new().add("bad", -1.0);
    }

    #[test]
    fn display_lists_parts() {
        let b = Breakdown::new().with("sim", 1.5);
        let s = format!("{b}");
        assert!(s.contains("sim=1.5000s"));
        assert!(s.contains("total=1.5000s"));
    }
}
