//! Per-thread allocation accounting behind the memory high-water gauge.
//!
//! [`TrackingAllocator`] wraps the system allocator and keeps
//! *thread-local* current/peak byte counters. Under minimpi's
//! thread-backed worlds one thread drives one rank, so the thread-local
//! peak is the per-rank allocation high-water mark the paper's memory
//! tables report.
//!
//! The accounting is an approximation at the edges: a buffer allocated
//! on one rank and freed on another (ownership moving through a
//! channel) debits the freeing thread, and intra-rank worker threads
//! (`exec::map_chunks`) carry their own counters. Rank-thread
//! allocations — mesh construction, analysis buffers, payload clones —
//! dominate, which is what the gauge is for.
//!
//! Enable the `track-alloc` feature (binaries and test harnesses, not
//! libraries) to install the allocator; without it [`peak_bytes`]
//! reports 0 and the gauge degrades gracefully.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static CURRENT: Cell<usize> = const { Cell::new(0) };
    static PEAK: Cell<usize> = const { Cell::new(0) };
}

/// Live heap bytes attributed to this thread.
pub fn current_bytes() -> usize {
    CURRENT.try_with(Cell::get).unwrap_or(0)
}

/// High-water heap bytes attributed to this thread since it started
/// (or since the last [`reset_peak`]).
pub fn peak_bytes() -> usize {
    PEAK.try_with(Cell::get).unwrap_or(0)
}

/// Restart the high-water mark from the current level.
pub fn reset_peak() {
    let now = current_bytes();
    let _ = PEAK.try_with(|p| p.set(now));
}

fn credit(n: usize) {
    // `try_with` guards thread teardown (TLS already destroyed).
    let _ = CURRENT.try_with(|c| {
        let v = c.get().saturating_add(n);
        c.set(v);
        let _ = PEAK.try_with(|p| {
            if v > p.get() {
                p.set(v);
            }
        });
    });
}

fn debit(n: usize) {
    let _ = CURRENT.try_with(|c| c.set(c.get().saturating_sub(n)));
}

/// A [`GlobalAlloc`] delegating to [`System`] while keeping the
/// thread-local counters above.
pub struct TrackingAllocator;

unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: `layout` is the caller's layout, forwarded unchanged;
        // our caller upholds `GlobalAlloc::alloc`'s contract (non-zero
        // size) and we add nothing that could invalidate it.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            credit(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: same delegation as `alloc` — the caller's layout
        // contract passes straight through to the system allocator.
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            credit(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was returned by `alloc`/`alloc_zeroed`/`realloc`
        // above, which all delegate to `System`, so `ptr` came from
        // `System` with this same `layout` (caller's contract).
        unsafe { System.dealloc(ptr, layout) };
        debit(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: `ptr`/`layout` obey the caller's `realloc` contract
        // and every block we hand out originates from `System`, so the
        // delegation preserves the allocator pairing.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            debit(layout.size());
            credit(new_size);
        }
        p
    }
}

#[cfg(feature = "track-alloc")]
#[global_allocator]
static TRACKING: TrackingAllocator = TrackingAllocator;

#[cfg(all(test, feature = "track-alloc"))]
mod tests {
    use super::*;

    #[test]
    fn vec_growth_raises_the_peak() {
        std::thread::spawn(|| {
            reset_peak();
            let before = peak_bytes();
            let v = vec![0u8; 1 << 20];
            assert!(peak_bytes() >= before + (1 << 20), "peak saw the alloc");
            drop(v);
            let after_drop = current_bytes();
            assert!(peak_bytes() >= after_drop + (1 << 20), "peak is sticky");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn threads_account_separately() {
        let big = std::thread::spawn(|| {
            reset_peak();
            let _v = vec![0u8; 1 << 20];
            peak_bytes()
        })
        .join()
        .unwrap();
        let small = std::thread::spawn(|| {
            reset_peak();
            peak_bytes()
        })
        .join()
        .unwrap();
        assert!(big >= 1 << 20);
        assert!(small < 1 << 20, "fresh thread does not see the other's MiB");
    }
}
