//! Cross-rank aggregation and the machine-readable run report.
//!
//! Per-rank [`Snapshot`]s gather (over the host's collectives — this
//! crate stays transport-free) and [`aggregate`] reduces them: for
//! every span label the per-rank **totals** summarize to min / mean /
//! max / stddev with the rank holding each extremum, counters sum, and
//! gauges keep their per-rank spread. [`RunReport`] packages the
//! aggregates with run shape and failure reports, and round-trips
//! through serde-free JSON ([`RunReport::to_json`] /
//! [`RunReport::from_json`]).

use crate::json::Json;
use crate::{Snapshot, GAUGE_ALLOC_PEAK, GAUGE_DATASET_OWNED, GAUGE_DATASET_SHARED};

/// Format tag written into every report.
pub const SCHEMA: &str = "sensei-runreport-v2";

/// Format tag of the previous schema revision, still accepted by
/// [`RunReport::from_json`] (its failure entries were plain strings;
/// they parse as kind `"other"` on rank 0).
pub const SCHEMA_V1: &str = "sensei-runreport-v1";

/// One non-fatal failure in the run, as a single machine-readable
/// shape: which rank reported it, a stable kind tag (`"dead-writer"`,
/// `"eviction"`, `"analysis"`, …), and the human-readable description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureEntry {
    /// Rank that recorded the failure.
    pub rank: usize,
    /// Stable machine-readable kind tag.
    pub kind: String,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for FailureEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {}: [{}] {}", self.rank, self.kind, self.detail)
    }
}

/// Cross-rank statistics for one span label, over per-rank totals.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseAgg {
    /// Slash-separated span path (`"per-step/histogram"`).
    pub label: String,
    /// Ranks that recorded this label.
    pub ranks: usize,
    /// Total samples across those ranks.
    pub samples: u64,
    /// Smallest per-rank total, seconds.
    pub min_s: f64,
    /// Mean per-rank total, seconds.
    pub mean_s: f64,
    /// Largest per-rank total, seconds.
    pub max_s: f64,
    /// Population stddev of per-rank totals, seconds.
    pub stddev_s: f64,
    /// Rank holding the smallest total.
    pub min_rank: usize,
    /// Rank holding the largest total.
    pub max_rank: usize,
}

/// Cross-rank totals for one counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterAgg {
    /// Counter name (`"minimpi/bcast"`).
    pub name: String,
    /// Invocations summed over ranks.
    pub calls: u64,
    /// Messages summed over ranks.
    pub messages: u64,
    /// Bytes summed over ranks.
    pub bytes: u64,
}

/// Cross-rank spread of one high-water gauge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaugeAgg {
    /// Gauge name.
    pub name: String,
    /// Smallest per-rank high-water mark.
    pub min: u64,
    /// Largest per-rank high-water mark.
    pub max: u64,
    /// Rank holding the smallest mark.
    pub min_rank: usize,
    /// Rank holding the largest mark.
    pub max_rank: usize,
}

/// Per-rank memory high-water marks (the paper's memory-overhead
/// subject), pulled from the well-known `mem/*` gauges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankMemory {
    /// Rank index.
    pub rank: usize,
    /// Allocation high-water of the rank thread, bytes (0 when the
    /// tracking allocator is not installed).
    pub alloc_peak_bytes: u64,
    /// Bytes analysis meshes owned outright.
    pub dataset_owned_bytes: u64,
    /// Bytes analysis meshes borrowed zero-copy from the simulation.
    pub dataset_shared_bytes: u64,
}

/// The output of [`aggregate`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Aggregates {
    /// Per-label cross-rank phase statistics, sorted by label.
    pub phases: Vec<PhaseAgg>,
    /// Per-name counter totals, sorted by name.
    pub counters: Vec<CounterAgg>,
    /// Per-name gauge spreads, sorted by name.
    pub gauges: Vec<GaugeAgg>,
    /// Per-rank memory table, one row per snapshot.
    pub memory: Vec<RankMemory>,
}

/// Reduce rank-ordered snapshots (`snapshots[r]` from rank `r`) to
/// cross-rank statistics. Pure and deterministic: the same snapshots
/// aggregate to the same report on any rank or host.
pub fn aggregate(snapshots: &[Snapshot]) -> Aggregates {
    let mut phases: Vec<PhaseAgg> = Vec::new();
    let mut counters: Vec<CounterAgg> = Vec::new();
    let mut gauges: Vec<GaugeAgg> = Vec::new();

    for (rank, snap) in snapshots.iter().enumerate() {
        for span in &snap.spans {
            let total = span.total;
            match phases.binary_search_by(|p| p.label.as_str().cmp(&span.label)) {
                Ok(i) => {
                    let p = &mut phases[i];
                    p.samples += span.count;
                    // Welford over per-rank totals; m2 is rebuilt below.
                    if total < p.min_s {
                        p.min_s = total;
                        p.min_rank = rank;
                    }
                    if total > p.max_s {
                        p.max_s = total;
                        p.max_rank = rank;
                    }
                    p.mean_s += total; // running sum until the final pass
                    p.ranks += 1;
                }
                Err(i) => phases.insert(
                    i,
                    PhaseAgg {
                        label: span.label.clone(),
                        ranks: 1,
                        samples: span.count,
                        min_s: total,
                        mean_s: total,
                        max_s: total,
                        stddev_s: 0.0,
                        min_rank: rank,
                        max_rank: rank,
                    },
                ),
            }
        }
        for c in &snap.counters {
            match counters.binary_search_by(|x| x.name.as_str().cmp(&c.name)) {
                Ok(i) => {
                    counters[i].calls += c.calls;
                    counters[i].messages += c.messages;
                    counters[i].bytes += c.bytes;
                }
                Err(i) => counters.insert(
                    i,
                    CounterAgg {
                        name: c.name.clone(),
                        calls: c.calls,
                        messages: c.messages,
                        bytes: c.bytes,
                    },
                ),
            }
        }
        for g in &snap.gauges {
            match gauges.binary_search_by(|x| x.name.as_str().cmp(&g.name)) {
                Ok(i) => {
                    let a = &mut gauges[i];
                    if g.max < a.min {
                        a.min = g.max;
                        a.min_rank = rank;
                    }
                    if g.max > a.max {
                        a.max = g.max;
                        a.max_rank = rank;
                    }
                }
                Err(i) => gauges.insert(
                    i,
                    GaugeAgg {
                        name: g.name.clone(),
                        min: g.max,
                        max: g.max,
                        min_rank: rank,
                        max_rank: rank,
                    },
                ),
            }
        }
    }

    // Second pass: turn the running total in `mean_s` into the mean and
    // compute the stddev of per-rank totals.
    for p in &mut phases {
        let n = p.ranks as f64;
        let mean = p.mean_s / n;
        let mut m2 = 0.0;
        for snap in snapshots {
            if let Some(span) = snap.spans.iter().find(|s| s.label == p.label) {
                let d = span.total - mean;
                m2 += d * d;
            }
        }
        p.mean_s = mean;
        p.stddev_s = if p.ranks < 2 { 0.0 } else { (m2 / n).sqrt() };
    }

    let memory = snapshots
        .iter()
        .enumerate()
        .map(|(rank, snap)| RankMemory {
            rank,
            alloc_peak_bytes: snap.gauge(GAUGE_ALLOC_PEAK).unwrap_or(0),
            dataset_owned_bytes: snap.gauge(GAUGE_DATASET_OWNED).unwrap_or(0),
            dataset_shared_bytes: snap.gauge(GAUGE_DATASET_SHARED).unwrap_or(0),
        })
        .collect();

    Aggregates {
        phases,
        counters,
        gauges,
        memory,
    }
}

/// The machine-readable record of one instrumented run: run shape,
/// non-fatal failure reports, and cross-rank aggregates.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Communicator size the bridge ran on.
    pub ranks: usize,
    /// Bridge steps executed.
    pub steps: u64,
    /// Non-fatal failure reports (empty = healthy run).
    pub failures: Vec<FailureEntry>,
    /// Per-label cross-rank phase statistics.
    pub phases: Vec<PhaseAgg>,
    /// Per-collective (and staging) counter totals.
    pub counters: Vec<CounterAgg>,
    /// Gauge spreads.
    pub gauges: Vec<GaugeAgg>,
    /// Per-rank memory high-water table.
    pub memory: Vec<RankMemory>,
}

impl RunReport {
    /// Build a report from rank-ordered snapshots.
    pub fn build(
        ranks: usize,
        steps: u64,
        failures: Vec<FailureEntry>,
        snapshots: &[Snapshot],
    ) -> Self {
        let agg = aggregate(snapshots);
        RunReport {
            ranks,
            steps,
            failures,
            phases: agg.phases,
            counters: agg.counters,
            gauges: agg.gauges,
            memory: agg.memory,
        }
    }

    /// Phase statistics by exact label.
    pub fn phase(&self, label: &str) -> Option<&PhaseAgg> {
        self.phases.iter().find(|p| p.label == label)
    }

    /// Counter totals by exact name.
    pub fn counter(&self, name: &str) -> Option<&CounterAgg> {
        self.counters.iter().find(|c| c.name == name)
    }

    /// Serialize to JSON (no external dependencies).
    pub fn to_json(&self) -> String {
        let phases = Json::Arr(
            self.phases
                .iter()
                .map(|p| {
                    Json::Obj(vec![
                        ("label".into(), Json::Str(p.label.clone())),
                        ("ranks".into(), Json::Num(p.ranks as f64)),
                        ("samples".into(), Json::Num(p.samples as f64)),
                        ("min_s".into(), Json::Num(p.min_s)),
                        ("mean_s".into(), Json::Num(p.mean_s)),
                        ("max_s".into(), Json::Num(p.max_s)),
                        ("stddev_s".into(), Json::Num(p.stddev_s)),
                        ("min_rank".into(), Json::Num(p.min_rank as f64)),
                        ("max_rank".into(), Json::Num(p.max_rank as f64)),
                    ])
                })
                .collect(),
        );
        let counters = Json::Arr(
            self.counters
                .iter()
                .map(|c| {
                    Json::Obj(vec![
                        ("name".into(), Json::Str(c.name.clone())),
                        ("calls".into(), Json::Num(c.calls as f64)),
                        ("messages".into(), Json::Num(c.messages as f64)),
                        ("bytes".into(), Json::Num(c.bytes as f64)),
                    ])
                })
                .collect(),
        );
        let gauges = Json::Arr(
            self.gauges
                .iter()
                .map(|g| {
                    Json::Obj(vec![
                        ("name".into(), Json::Str(g.name.clone())),
                        ("min".into(), Json::Num(g.min as f64)),
                        ("max".into(), Json::Num(g.max as f64)),
                        ("min_rank".into(), Json::Num(g.min_rank as f64)),
                        ("max_rank".into(), Json::Num(g.max_rank as f64)),
                    ])
                })
                .collect(),
        );
        let memory = Json::Arr(
            self.memory
                .iter()
                .map(|m| {
                    Json::Obj(vec![
                        ("rank".into(), Json::Num(m.rank as f64)),
                        (
                            "alloc_peak_bytes".into(),
                            Json::Num(m.alloc_peak_bytes as f64),
                        ),
                        (
                            "dataset_owned_bytes".into(),
                            Json::Num(m.dataset_owned_bytes as f64),
                        ),
                        (
                            "dataset_shared_bytes".into(),
                            Json::Num(m.dataset_shared_bytes as f64),
                        ),
                    ])
                })
                .collect(),
        );
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("ranks".into(), Json::Num(self.ranks as f64)),
            ("steps".into(), Json::Num(self.steps as f64)),
            (
                "failures".into(),
                Json::Arr(
                    self.failures
                        .iter()
                        .map(|f| {
                            Json::Obj(vec![
                                ("rank".into(), Json::Num(f.rank as f64)),
                                ("kind".into(), Json::Str(f.kind.clone())),
                                ("detail".into(), Json::Str(f.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("phases".into(), phases),
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("memory".into(), memory),
        ]);
        doc.to_string()
    }

    /// Parse a report previously written by [`RunReport::to_json`].
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        let doc = Json::parse(text)?;
        let schema = doc.get("schema").and_then(Json::as_str);
        if schema != Some(SCHEMA) && schema != Some(SCHEMA_V1) {
            return Err(format!("not a {SCHEMA} document"));
        }
        let need_u64 = |v: &Json, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing integer field '{key}'"))
        };
        let need_f64 = |v: &Json, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing number field '{key}'"))
        };
        let need_str = |v: &Json, key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(String::from)
                .ok_or_else(|| format!("missing string field '{key}'"))
        };
        let arr = |key: &str| -> Result<&[Json], String> {
            doc.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("missing array field '{key}'"))
        };

        let mut report = RunReport {
            ranks: need_u64(&doc, "ranks")? as usize,
            steps: need_u64(&doc, "steps")?,
            ..RunReport::default()
        };
        for f in arr("failures")? {
            // v1 wrote plain strings; v2 writes {rank, kind, detail}.
            let entry = match f.as_str() {
                Some(detail) => FailureEntry {
                    rank: 0,
                    kind: "other".into(),
                    detail: detail.into(),
                },
                None => FailureEntry {
                    rank: need_u64(f, "rank")? as usize,
                    kind: need_str(f, "kind")?,
                    detail: need_str(f, "detail")?,
                },
            };
            report.failures.push(entry);
        }
        for p in arr("phases")? {
            report.phases.push(PhaseAgg {
                label: need_str(p, "label")?,
                ranks: need_u64(p, "ranks")? as usize,
                samples: need_u64(p, "samples")?,
                min_s: need_f64(p, "min_s")?,
                mean_s: need_f64(p, "mean_s")?,
                max_s: need_f64(p, "max_s")?,
                stddev_s: need_f64(p, "stddev_s")?,
                min_rank: need_u64(p, "min_rank")? as usize,
                max_rank: need_u64(p, "max_rank")? as usize,
            });
        }
        for c in arr("counters")? {
            report.counters.push(CounterAgg {
                name: need_str(c, "name")?,
                calls: need_u64(c, "calls")?,
                messages: need_u64(c, "messages")?,
                bytes: need_u64(c, "bytes")?,
            });
        }
        for g in arr("gauges")? {
            report.gauges.push(GaugeAgg {
                name: need_str(g, "name")?,
                min: need_u64(g, "min")?,
                max: need_u64(g, "max")?,
                min_rank: need_u64(g, "min_rank")? as usize,
                max_rank: need_u64(g, "max_rank")? as usize,
            });
        }
        for m in arr("memory")? {
            report.memory.push(RankMemory {
                rank: need_u64(m, "rank")? as usize,
                alloc_peak_bytes: need_u64(m, "alloc_peak_bytes")?,
                dataset_owned_bytes: need_u64(m, "dataset_owned_bytes")?,
                dataset_shared_bytes: need_u64(m, "dataset_shared_bytes")?,
            });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterStat, GaugeStat, SpanStat};

    fn rank_snapshot(seed: f64) -> Snapshot {
        let mut s = Snapshot::default();
        s.upsert_span(SpanStat::from_samples(
            "per-step/histogram",
            &[seed, seed * 2.0],
        ));
        s.counters.push(CounterStat {
            name: "minimpi/bcast".into(),
            calls: 2,
            messages: 3,
            bytes: 100,
        });
        s.gauges.push(GaugeStat {
            name: GAUGE_ALLOC_PEAK.into(),
            max: (seed * 1000.0) as u64,
        });
        s
    }

    #[test]
    fn aggregate_tracks_extrema_and_ranks() {
        let snaps = [rank_snapshot(1.0), rank_snapshot(3.0), rank_snapshot(2.0)];
        let agg = aggregate(&snaps);
        assert_eq!(agg.phases.len(), 1);
        let p = &agg.phases[0];
        // Per-rank totals: 3.0, 9.0, 6.0.
        assert_eq!(p.ranks, 3);
        assert_eq!(p.samples, 6);
        assert_eq!(p.min_s, 3.0);
        assert_eq!(p.max_s, 9.0);
        assert_eq!(p.mean_s, 6.0);
        assert_eq!(p.min_rank, 0);
        assert_eq!(p.max_rank, 1);
        assert!((p.stddev_s - (6.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(agg.counters[0].calls, 6);
        assert_eq!(agg.counters[0].bytes, 300);
        assert_eq!(agg.memory.len(), 3);
        assert_eq!(agg.memory[1].alloc_peak_bytes, 3000);
        assert_eq!(agg.gauges[0].min_rank, 0);
        assert_eq!(agg.gauges[0].max_rank, 1);
    }

    #[test]
    fn single_rank_has_zero_spread() {
        let agg = aggregate(&[rank_snapshot(2.0)]);
        assert_eq!(agg.phases[0].stddev_s, 0.0);
        assert_eq!(agg.phases[0].min_s, agg.phases[0].max_s);
    }

    #[test]
    fn report_json_round_trips() {
        let snaps = [rank_snapshot(1.0), rank_snapshot(4.0)];
        let report = RunReport::build(
            2,
            7,
            vec![FailureEntry {
                rank: 1,
                kind: "dead-writer".into(),
                detail: "writer 1: lost in transit \"mid-step\"".into(),
            }],
            &snaps,
        );
        let text = report.to_json();
        let back = RunReport::from_json(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn v1_reports_with_string_failures_still_parse() {
        let text = format!(
            "{{\"schema\": \"{SCHEMA_V1}\", \"ranks\": 2, \"steps\": 3, \
             \"failures\": [\"writer lost\"], \"phases\": [], \"counters\": [], \
             \"gauges\": [], \"memory\": []}}"
        );
        let report = RunReport::from_json(&text).unwrap();
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].kind, "other");
        assert_eq!(report.failures[0].rank, 0);
        assert_eq!(report.failures[0].detail, "writer lost");
    }

    #[test]
    fn report_accessors() {
        let report = RunReport::build(1, 1, vec![], &[rank_snapshot(1.0)]);
        assert!(report.phase("per-step/histogram").is_some());
        assert!(report.phase("per-step/missing").is_none());
        assert_eq!(report.counter("minimpi/bcast").unwrap().messages, 3);
    }

    #[test]
    fn from_json_rejects_other_documents() {
        assert!(RunReport::from_json("{}").is_err());
        assert!(RunReport::from_json("[1,2]").is_err());
        assert!(RunReport::from_json("{\"schema\": \"other\"}").is_err());
    }
}
