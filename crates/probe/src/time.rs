//! Pluggable time source: real monotonic clock or a deterministic
//! per-thread virtual clock.
//!
//! Every duration that can end up in a [`crate::RunReport`] — probe
//! spans, the sensei timing database, `Comm::wtime`, the staging
//! writers' advance/write decomposition — reads the clock through
//! [`now_seconds`]. By default that is a process-wide monotonic clock.
//! Under the deterministic scheduler (`minimpi::sched`), each rank
//! thread installs a *virtual* clock instead: every [`now_seconds`]
//! call advances a thread-local counter by a fixed tick and returns it.
//! Durations then count clock *reads*, not wall time, so a seeded run
//! records byte-identical timings on every execution.
//!
//! The source is thread-local on purpose: rank threads of a
//! deterministic world run virtual while the harness thread (and any
//! compute worker threads an analysis spawns) keep real time.

use std::cell::Cell;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Seconds a virtual clock advances per [`now_seconds`] call: 100 ns.
/// Small enough that virtual spans stay far below any real-time
/// threshold a test might assert on, large enough to stay exact in f64.
pub const VIRTUAL_TICK_SECONDS: f64 = 1e-7;

thread_local! {
    /// `Some(ticks)` when this thread runs on virtual time.
    static VIRTUAL_TICKS: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Process-wide origin for the real clock, fixed at first use.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Seconds since an arbitrary origin, on this thread's active source.
///
/// Real source: monotonic seconds since the process epoch. Virtual
/// source: the thread's tick counter advances by
/// [`VIRTUAL_TICK_SECONDS`] on every call and the new value is
/// returned, so two reads always differ by a deterministic amount.
pub fn now_seconds() -> f64 {
    VIRTUAL_TICKS.with(|v| match v.get() {
        Some(ticks) => {
            let next = ticks + 1;
            v.set(Some(next));
            next as f64 * VIRTUAL_TICK_SECONDS
        }
        None => epoch().elapsed().as_secs_f64(),
    })
}

/// Is this thread currently on the virtual source?
pub fn is_virtual() -> bool {
    VIRTUAL_TICKS.with(|v| v.get().is_some())
}

/// Switch this thread to the virtual source (counter reset to zero).
/// Restores the previous source when the returned guard drops.
pub fn install_virtual() -> VirtualTimeGuard {
    let prev = VIRTUAL_TICKS.with(|v| v.replace(Some(0)));
    VirtualTimeGuard { prev }
}

/// A wall-clock instant for *control flow*: watchdog grace periods,
/// poll deadlines, exploration budgets — places that must track real
/// elapsed time even on a thread whose measurement clock is virtual.
///
/// This is the workspace's only sanctioned wrapper around
/// [`std::time::Instant`]; the lint pass (`cargo run -p lint`) rejects
/// direct `Instant`/`SystemTime` use outside this module so that every
/// *measured* duration flows through [`now_seconds`] (and stays
/// deterministic under the virtual source), while timeout logic
/// explicitly opts into real time by naming `Wall`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Wall(Instant);

impl Wall {
    /// The current wall-clock instant (always real time, never virtual).
    pub fn now() -> Self {
        Wall(Instant::now())
    }

    /// Real time elapsed since this instant.
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Real time between `earlier` and this instant (zero if negative).
    pub fn duration_since(&self, earlier: Wall) -> Duration {
        self.0.saturating_duration_since(earlier.0)
    }
}

/// Restores the thread's previous time source on drop; see
/// [`install_virtual`].
pub struct VirtualTimeGuard {
    prev: Option<u64>,
}

impl Drop for VirtualTimeGuard {
    fn drop(&mut self) {
        VIRTUAL_TICKS.with(|v| v.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_time_advances() {
        assert!(!is_virtual());
        let a = now_seconds();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = now_seconds();
        assert!(b > a);
    }

    #[test]
    fn virtual_time_ticks_deterministically() {
        let _g = install_virtual();
        assert!(is_virtual());
        let a = now_seconds();
        let b = now_seconds();
        let c = now_seconds();
        assert_eq!(a, VIRTUAL_TICK_SECONDS);
        assert_eq!(b - a, VIRTUAL_TICK_SECONDS);
        assert_eq!(c - b, VIRTUAL_TICK_SECONDS);
    }

    #[test]
    fn guard_restores_previous_source() {
        {
            let _g = install_virtual();
            assert!(is_virtual());
            {
                let _inner = install_virtual();
                assert!(is_virtual());
            }
            // Still virtual: the inner guard restored the outer source.
            assert!(is_virtual());
        }
        assert!(!is_virtual());
    }

    #[test]
    fn wall_clock_is_real_even_under_virtual_time() {
        let _g = install_virtual();
        let t0 = Wall::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(1));
        let t1 = Wall::now();
        assert!(t1.duration_since(t0) >= std::time::Duration::from_millis(1));
        assert_eq!(t0.duration_since(t1), std::time::Duration::ZERO);
    }

    #[test]
    fn virtual_source_is_per_thread() {
        let _g = install_virtual();
        let other = std::thread::spawn(is_virtual).join().unwrap();
        assert!(!other, "fresh threads start on real time");
    }
}
