//! A minimal serde-free JSON value: enough writer + parser for the
//! [`crate::RunReport`] round trip. Numbers are `f64`; integers up to
//! 2^53 round-trip exactly, which covers every counter this crate
//! records in practice.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer (must be whole and in range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Parse a JSON document (the subset this crate writes, which is
    /// standard JSON minus exotic number forms it never emits).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Serialize compactly (no insignificant whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Write a number; non-finite values (unrepresentable in JSON) write 0.
fn write_num(out: &mut String, n: f64) {
    if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        out.push('0');
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_str(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogates never appear in this crate's output.
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-1.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn nested_round_trip() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Num(1.0)),
            ("b".into(), Json::Arr(vec![Json::Num(2.5), Json::Null])),
            (
                "c".into(),
                Json::Obj(vec![("d".into(), Json::Str("x\"y\\z\n".into()))]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn f64_shortest_repr_round_trips() {
        for n in [0.1, 1e-7, 123456.789, f64::MIN_POSITIVE.sqrt()] {
            let text = Json::Num(n).to_string();
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(n));
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 3, "s": "x", "a": [1, 2]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(|a| a.len()), Some(2));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn control_chars_escape() {
        let v = Json::Str("a\u{1}b".into());
        let text = v.to_string();
        assert_eq!(text, "\"a\\u0001b\"");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }
}
