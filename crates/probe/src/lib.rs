//! Cross-rank observability: the measurement layer behind the paper's
//! per-rank cost decompositions and memory-overhead tables.
//!
//! The crate sits at the bottom of the workspace (its only dependency
//! is the in-tree `parking_lot` lock shim) so every layer — the MPI
//! substrate included — can hold a [`Probe`] without dependency
//! cycles. A probe is a cheap cloneable handle in one of two states:
//!
//! * [`off`]: a `const` no-op handle. Every recording method starts
//!   with a branch on `None` and inlines away — the default path a
//!   simulation pays when nobody asked for measurements.
//! * [`enabled`]: a shared recorder of hierarchical **spans**
//!   (`"per-step/histogram/reduce"`-style slash paths), **counters**
//!   (calls / messages / bytes per label), and high-water **gauges**.
//!
//! A rank extracts its local [`Snapshot`] at finalize; snapshots
//! gathered from every rank aggregate (min / mean / max / stddev and
//! rank-of-extremum per label) into a [`RunReport`], which serializes
//! to JSON without serde (see [`report`]).

pub mod alloc;
mod json;
mod report;
pub mod time;

pub use json::Json;
pub use report::{
    aggregate, Aggregates, CounterAgg, FailureEntry, GaugeAgg, PhaseAgg, RankMemory, RunReport,
};

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// Gauge name for the per-rank allocation high-water mark (bytes).
pub const GAUGE_ALLOC_PEAK: &str = "mem/alloc_peak_bytes";
/// Gauge name for bytes a rank's analysis meshes own outright.
pub const GAUGE_DATASET_OWNED: &str = "mem/dataset_owned_bytes";
/// Gauge name for bytes a rank's analysis meshes borrow from the
/// simulation (zero-copy shared buffers).
pub const GAUGE_DATASET_SHARED: &str = "mem/dataset_shared_bytes";

/// Namespaced instrumentation keys.
///
/// Every counter and gauge in the workspace lives on a slash path
/// (`"broker/field#0/queue_peak"`, `"staging/on_wire"`, …). Building
/// those paths with ad-hoc `format!` calls at each site let the same
/// metric drift into different spellings between recording and
/// reporting; these helpers are the single place the shape is
/// defined. The output is byte-identical to the historical keys, so
/// existing `RunReport`s and checked-in baselines keep their labels.
pub mod key {
    use std::fmt::Display;

    /// A crate-wide metric: `"namespace/metric"`.
    pub fn of(namespace: &str, metric: &str) -> String {
        format!("{namespace}/{metric}")
    }

    /// A per-entity metric: `"namespace/instance/metric"`. The
    /// instance renders through `Display`, so topic handles, ranks,
    /// and labels all slot in without pre-formatting.
    pub fn scoped(namespace: &str, instance: impl Display, metric: &str) -> String {
        format!("{namespace}/{instance}/{metric}")
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        struct Topic(u32);
        impl Display for Topic {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "field#{}", self.0)
            }
        }

        // The exact strings below appear in checked-in baseline
        // reports; the helper must reproduce them byte-for-byte.
        #[test]
        fn keys_match_the_historical_spellings() {
            assert_eq!(of("broker", "evictions"), "broker/evictions");
            assert_eq!(of("staging", "on_wire"), "staging/on_wire");
            assert_eq!(of("staging", "off_wire"), "staging/off_wire");
            assert_eq!(of("minimpi", "reduce"), "minimpi/reduce");
            assert_eq!(
                scoped("broker", Topic(3), "queue_peak"),
                "broker/field#3/queue_peak"
            );
            assert_eq!(
                scoped("broker", Topic(0), "fanout"),
                "broker/field#0/fanout"
            );
        }
    }
}

/// Online mean/variance accumulator (Welford) with range tracking.
#[derive(Clone, Copy, Debug, Default)]
struct Welford {
    count: u64,
    total: f64,
    min: f64,
    max: f64,
    mean: f64,
    m2: f64,
}

impl Welford {
    fn push(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.total += x;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Population standard deviation (0 for fewer than two samples).
    fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0).sqrt()
        }
    }
}

/// Per-label message/byte tallies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Counter {
    calls: u64,
    messages: u64,
    bytes: u64,
}

#[derive(Default)]
struct State {
    spans: BTreeMap<String, Welford>,
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, u64>,
}

/// The recorder behind an enabled probe. Interior state sits behind a
/// mutex so the handle stays `Send + Sync` (bridges and communicators
/// holding probes cross thread-join boundaries); within a rank the
/// lock is uncontended.
#[derive(Default)]
struct Inner {
    state: Mutex<State>,
}

/// A cloneable observability handle: either a `const` no-op ([`off`])
/// or a shared recorder ([`enabled`]).
#[derive(Clone, Default)]
pub struct Probe(Option<Arc<Inner>>);

/// The no-op probe: every recording method is a single branch that the
/// optimizer removes. This is the default everywhere.
pub const fn off() -> Probe {
    Probe(None)
}

/// A live probe that records spans, counters, and gauges.
pub fn enabled() -> Probe {
    Probe(Some(Arc::new(Inner::default())))
}

impl Probe {
    /// Alias for [`off`].
    pub const fn off() -> Self {
        off()
    }

    /// Alias for [`enabled`].
    pub fn enabled() -> Self {
        enabled()
    }

    /// Is this handle recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Start a RAII span; its elapsed time (on the thread's active
    /// [`time`] source) records under `path` on drop. Paths are
    /// slash-separated hierarchies such as
    /// `"per-step/histogram/reduce"`.
    #[inline]
    pub fn span<'p>(&'p self, path: &'p str) -> Span<'p> {
        Span {
            probe: self,
            path,
            start: self.0.as_ref().map(|_| time::now_seconds()),
        }
    }

    /// Record one `seconds` sample under the span `path`.
    #[inline]
    pub fn record_span(&self, path: &str, seconds: f64) {
        if let Some(inner) = &self.0 {
            let mut state = inner.state.lock();
            match state.spans.get_mut(path) {
                Some(w) => w.push(seconds),
                None => {
                    let mut w = Welford::default();
                    w.push(seconds);
                    state.spans.insert(path.to_string(), w);
                }
            }
        }
    }

    /// Count one invocation under the counter `name` (e.g. one
    /// collective call, independent of how many messages it moved).
    #[inline]
    pub fn call(&self, name: &str) {
        if let Some(inner) = &self.0 {
            let mut state = inner.state.lock();
            counter_mut(&mut state, name).calls += 1;
        }
    }

    /// Count one message of `bytes` under the counter `name`.
    #[inline]
    pub fn message(&self, name: &str, bytes: u64) {
        if let Some(inner) = &self.0 {
            let mut state = inner.state.lock();
            let c = counter_mut(&mut state, name);
            c.messages += 1;
            c.bytes += bytes;
        }
    }

    /// Bulk counter update: `calls` invocations moving `messages`
    /// messages of `bytes` total under `name`, in one lock
    /// acquisition. The fan-out hot path (one publish delivered to N
    /// subscribers) records once instead of N times.
    #[inline]
    pub fn bulk(&self, name: &str, calls: u64, messages: u64, bytes: u64) {
        if let Some(inner) = &self.0 {
            let mut state = inner.state.lock();
            let c = counter_mut(&mut state, name);
            c.calls += calls;
            c.messages += messages;
            c.bytes += bytes;
        }
    }

    /// Raise the high-water gauge `name` to at least `value`.
    #[inline]
    pub fn gauge_max(&self, name: &str, value: u64) {
        if let Some(inner) = &self.0 {
            let mut state = inner.state.lock();
            match state.gauges.get_mut(name) {
                Some(g) => *g = (*g).max(value),
                None => {
                    state.gauges.insert(name.to_string(), value);
                }
            }
        }
    }

    /// This handle's recordings as plain data (empty when disabled).
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.0 else {
            return Snapshot::default();
        };
        let state = inner.state.lock();
        Snapshot {
            spans: state
                .spans
                .iter()
                .map(|(label, w)| SpanStat {
                    label: label.clone(),
                    count: w.count,
                    total: w.total,
                    min: w.min,
                    max: w.max,
                    mean: w.mean,
                    stddev: w.stddev(),
                })
                .collect(),
            counters: state
                .counters
                .iter()
                .map(|(name, c)| CounterStat {
                    name: name.clone(),
                    calls: c.calls,
                    messages: c.messages,
                    bytes: c.bytes,
                })
                .collect(),
            gauges: state
                .gauges
                .iter()
                .map(|(name, &max)| GaugeStat {
                    name: name.clone(),
                    max,
                })
                .collect(),
        }
    }
}

fn counter_mut<'s>(state: &'s mut State, name: &str) -> &'s mut Counter {
    if !state.counters.contains_key(name) {
        state.counters.insert(name.to_string(), Counter::default());
    }
    state.counters.get_mut(name).unwrap()
}

/// RAII timer returned by [`Probe::span`]; records on drop. Holds no
/// allocation and reads no clock when the probe is off.
pub struct Span<'p> {
    probe: &'p Probe,
    path: &'p str,
    start: Option<f64>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            self.probe
                .record_span(self.path, (time::now_seconds() - t0).max(0.0));
        }
    }
}

/// Per-label timing statistics of one rank.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanStat {
    /// Slash-separated span path.
    pub label: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples, seconds.
    pub total: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Mean sample.
    pub mean: f64,
    /// Population standard deviation over samples.
    pub stddev: f64,
}

impl SpanStat {
    /// Build a stat from raw samples (Welford pass), e.g. when merging
    /// an external timing table into a snapshot.
    pub fn from_samples(label: impl Into<String>, samples: &[f64]) -> Self {
        let mut w = Welford::default();
        for &s in samples {
            w.push(s);
        }
        SpanStat {
            label: label.into(),
            count: w.count,
            total: w.total,
            min: if w.count == 0 { 0.0 } else { w.min },
            max: if w.count == 0 { 0.0 } else { w.max },
            mean: w.mean,
            stddev: w.stddev(),
        }
    }
}

/// Per-label counter totals of one rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterStat {
    /// Counter name (e.g. `"minimpi/bcast"`).
    pub name: String,
    /// Operation invocations.
    pub calls: u64,
    /// Messages sent.
    pub messages: u64,
    /// Payload bytes sent (estimated for type-erased payloads).
    pub bytes: u64,
}

/// One high-water gauge of one rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaugeStat {
    /// Gauge name (e.g. [`GAUGE_ALLOC_PEAK`]).
    pub name: String,
    /// Largest value observed.
    pub max: u64,
}

/// Everything one rank recorded, as plain data (gatherable across
/// ranks). Entries are sorted by label/name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Span timing stats.
    pub spans: Vec<SpanStat>,
    /// Counter totals.
    pub counters: Vec<CounterStat>,
    /// Gauge high-water marks.
    pub gauges: Vec<GaugeStat>,
}

impl Snapshot {
    /// Merge a span stat in, keeping label order. An existing label is
    /// replaced (the caller owns dedup semantics).
    pub fn upsert_span(&mut self, stat: SpanStat) {
        match self.spans.binary_search_by(|s| s.label.cmp(&stat.label)) {
            Ok(i) => self.spans[i] = stat,
            Err(i) => self.spans.insert(i, stat),
        }
    }

    /// Gauge value by name, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_probe_records_nothing() {
        let p = off();
        assert!(!p.is_enabled());
        {
            let _s = p.span("per-step/x");
        }
        p.call("c");
        p.message("c", 100);
        p.gauge_max("g", 5);
        assert_eq!(p.snapshot(), Snapshot::default());
    }

    #[test]
    fn enabled_probe_accumulates() {
        let p = enabled();
        p.record_span("per-step/a", 1.0);
        p.record_span("per-step/a", 3.0);
        p.call("minimpi/bcast");
        p.message("minimpi/bcast", 64);
        p.message("minimpi/bcast", 36);
        p.gauge_max("mem/x", 10);
        p.gauge_max("mem/x", 4);
        let s = p.snapshot();
        assert_eq!(s.spans.len(), 1);
        assert_eq!(s.spans[0].count, 2);
        assert_eq!(s.spans[0].total, 4.0);
        assert_eq!(s.spans[0].min, 1.0);
        assert_eq!(s.spans[0].max, 3.0);
        assert_eq!(s.spans[0].mean, 2.0);
        assert_eq!(s.spans[0].stddev, 1.0);
        assert_eq!(
            s.counters,
            vec![CounterStat {
                name: "minimpi/bcast".into(),
                calls: 1,
                messages: 2,
                bytes: 100,
            }]
        );
        assert_eq!(s.gauge("mem/x"), Some(10));
        assert_eq!(s.gauge("mem/missing"), None);
    }

    #[test]
    fn bulk_updates_one_counter_in_one_shot() {
        let p = enabled();
        p.bulk("broker/data#0/fanout", 1, 1000, 8000);
        p.bulk("broker/data#0/fanout", 1, 500, 4000);
        let s = p.snapshot();
        assert_eq!(
            s.counters,
            vec![CounterStat {
                name: "broker/data#0/fanout".into(),
                calls: 2,
                messages: 1500,
                bytes: 12000,
            }]
        );
        // Disabled probe: still a no-op.
        off().bulk("x", 1, 1, 1);
    }

    #[test]
    fn clones_share_state() {
        let p = enabled();
        let q = p.clone();
        q.call("c");
        assert_eq!(p.snapshot().counters[0].calls, 1);
    }

    #[test]
    fn span_guard_measures_elapsed() {
        let p = enabled();
        {
            let _s = p.span("per-step/sleep");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let s = p.snapshot();
        assert_eq!(s.spans[0].label, "per-step/sleep");
        assert!(s.spans[0].total >= 0.004);
    }

    #[test]
    fn from_samples_matches_welford() {
        let s = SpanStat::from_samples("x", &[2.0, 4.0, 6.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert!((s.stddev - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        let e = SpanStat::from_samples("e", &[]);
        assert_eq!((e.count, e.min, e.max), (0, 0.0, 0.0));
    }

    #[test]
    fn upsert_span_keeps_order() {
        let mut s = Snapshot::default();
        s.upsert_span(SpanStat::from_samples("b", &[1.0]));
        s.upsert_span(SpanStat::from_samples("a", &[2.0]));
        s.upsert_span(SpanStat::from_samples("b", &[9.0]));
        let labels: Vec<&str> = s.spans.iter().map(|x| x.label.as_str()).collect();
        assert_eq!(labels, vec!["a", "b"]);
        assert_eq!(s.spans[1].total, 9.0);
    }
}
