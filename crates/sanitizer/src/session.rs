//! A sanitizer session: one per world, shared by every rank thread.
//!
//! The session owns the cross-rank state the per-thread contexts
//! cannot: the in-flight message registry (for leak detection at
//! teardown), the open zero-copy publish windows (for view-leak
//! detection at `Bridge::finalize`), and — in [`Mode::Collect`] — the
//! accumulated findings. In [`Mode::Panic`] a finding panics the
//! offending rank thread instead, so the world's deterministic
//! scheduler prints the delivery trace and the failure reproduces with
//! `SchedPolicy::Seeded(seed)`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::VectorClock;
use crate::report::{Finding, FindingKind};

/// What the session does with a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Panic on the detecting thread with the rendered finding. The
    /// default for env-enabled runs: under a seeded world the panic
    /// carries a replayable trace.
    Panic,
    /// Accumulate findings for later inspection ([`Session::findings`]).
    /// Used by the planted-bug tests and the `Explorer` race hunt.
    Collect,
}

/// Bookkeeping for one in-flight message.
#[derive(Clone, Debug)]
pub struct MsgMeta {
    pub from: usize,
    pub to: usize,
    pub tag: String,
    pub clock: VectorClock,
}

/// Bookkeeping for one open zero-copy publish window.
#[derive(Clone, Debug)]
struct PubMeta {
    slot: usize,
    subject: String,
}

/// Bookkeeping for one open protocol obligation: a resource whose
/// acquire must be paired with a release before the world (or the
/// bridge) finalizes — offload worker pools, live query-client
/// registrations, and the like.
#[derive(Clone, Debug)]
struct OblMeta {
    slot: usize,
    kind: String,
    subject: String,
}

#[derive(Default)]
struct SessState {
    inflight: BTreeMap<u64, MsgMeta>,
    publishes: BTreeMap<u64, PubMeta>,
    obligations: BTreeMap<u64, OblMeta>,
    findings: Vec<Finding>,
}

/// Shared sanitizer state for one world run.
pub struct Session {
    size: usize,
    mode: Mode,
    seed: Mutex<Option<u64>>,
    next_id: AtomicU64,
    state: Mutex<SessState>,
}

impl Session {
    /// A fresh session for a world of `size` ranks.
    pub fn new(size: usize, mode: Mode) -> Arc<Session> {
        Arc::new(Session {
            size,
            mode,
            seed: Mutex::new(None),
            next_id: AtomicU64::new(1),
            state: Mutex::new(SessState::default()),
        })
    }

    /// World size this session sanitizes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The session's reporting mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Attach the scheduler seed so findings carry replay provenance.
    pub fn set_seed(&self, seed: Option<u64>) {
        *self.seed.lock() = seed;
    }

    /// The seed findings are stamped with.
    pub fn seed(&self) -> Option<u64> {
        *self.seed.lock()
    }

    /// Register a message entering flight; returns its session-unique
    /// id (carried on the envelope stamp, cleared on delivery).
    pub fn register_send(&self, meta: MsgMeta) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.state.lock().inflight.insert(id, meta);
        id
    }

    /// Delivery: the message with `msg_id` was matched by a receiver.
    pub fn register_recv(&self, msg_id: u64) {
        self.state.lock().inflight.remove(&msg_id);
    }

    /// The send never entered flight (receiver's channel already
    /// closed): forget it without a finding.
    pub fn cancel_send(&self, msg_id: u64) {
        self.state.lock().inflight.remove(&msg_id);
    }

    /// Register an open zero-copy publish window (a staged view).
    pub fn register_publish(&self, slot: usize, subject: &str) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.state.lock().publishes.insert(
            id,
            PubMeta {
                slot,
                subject: subject.to_string(),
            },
        );
        id
    }

    /// The publish window with `pub_id` closed (view returned).
    pub fn release_publish(&self, pub_id: u64) {
        self.state.lock().publishes.remove(&pub_id);
    }

    /// Open a protocol obligation for `slot`: `kind` names the
    /// protocol (e.g. `offload-workers`, `query-client`), `subject`
    /// the concrete resource. Returns the id [`Session::close_obligation`]
    /// must be called with before finalize/teardown.
    pub fn open_obligation(&self, slot: usize, kind: &str, subject: &str) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.state.lock().obligations.insert(
            id,
            OblMeta {
                slot,
                kind: kind.to_string(),
                subject: subject.to_string(),
            },
        );
        id
    }

    /// The obligation with `id` was discharged (drained, left, joined).
    pub fn close_obligation(&self, id: u64) {
        self.state.lock().obligations.remove(&id);
    }

    /// Obligations still open for `slot` — the finalize-time leak
    /// check a bridge runs after its analyses shut down. Each open
    /// obligation becomes a finding.
    pub fn check_obligations(&self, slot: usize, location: &str) {
        let leaked: Vec<OblMeta> = {
            let state = self.state.lock();
            state
                .obligations
                .values()
                .filter(|o| o.slot == slot)
                .cloned()
                .collect()
        };
        for o in leaked {
            self.report(Finding {
                kind: FindingKind::ObligationLeak,
                slots: (o.slot, None),
                subject: format!("{} ({})", o.subject, o.kind),
                clocks: (None, None),
                seed: None,
                detail: format!("protocol obligation never discharged by {location}"),
            });
        }
    }

    /// Route a finding per [`Mode`].
    pub fn report(&self, mut finding: Finding) {
        if finding.seed.is_none() {
            finding.seed = self.seed();
        }
        match self.mode {
            Mode::Panic => panic!("{finding}"),
            Mode::Collect => self.state.lock().findings.push(finding),
        }
    }

    /// Findings accumulated so far (Collect mode; empty under Panic).
    pub fn findings(&self) -> Vec<Finding> {
        self.state.lock().findings.clone()
    }

    /// Drop every accumulated finding (between Explorer runs).
    pub fn clear_findings(&self) {
        self.state.lock().findings.clear();
    }

    /// Publish windows still open for `slot` — the view-leak check a
    /// bridge runs at finalize. Each open window becomes a finding.
    pub fn check_view_leaks(&self, slot: usize, location: &str) {
        let leaked: Vec<PubMeta> = {
            let state = self.state.lock();
            state
                .publishes
                .values()
                .filter(|p| p.slot == slot)
                .cloned()
                .collect()
        };
        for p in leaked {
            self.report(Finding {
                kind: FindingKind::ViewLeak,
                slots: (p.slot, None),
                subject: p.subject.clone(),
                clocks: (None, None),
                seed: None,
                detail: format!("zero-copy publish window still open at {location}"),
            });
        }
    }

    /// World teardown (main thread, after every rank joined cleanly):
    /// any message still in flight was sent but never received; any
    /// publish window still open outlived the world. Reports one
    /// finding per leak and returns how many fired.
    pub fn finish_world(&self) -> usize {
        let (msgs, pubs, obls): (Vec<(u64, MsgMeta)>, Vec<PubMeta>, Vec<OblMeta>) = {
            let state = self.state.lock();
            (
                state
                    .inflight
                    .iter()
                    .map(|(k, v)| (*k, v.clone()))
                    .collect(),
                state.publishes.values().cloned().collect(),
                state.obligations.values().cloned().collect(),
            )
        };
        let n = msgs.len() + pubs.len() + obls.len();
        for (_, m) in msgs {
            self.report(Finding {
                kind: FindingKind::MessageLeak,
                slots: (m.from, Some(m.to)),
                subject: m.tag.clone(),
                clocks: (Some(m.clock.clone()), None),
                seed: None,
                detail: "message sent but never received by world teardown".into(),
            });
        }
        for p in pubs {
            self.report(Finding {
                kind: FindingKind::ViewLeak,
                slots: (p.slot, None),
                subject: p.subject.clone(),
                clocks: (None, None),
                seed: None,
                detail: "zero-copy publish window still open at world teardown".into(),
            });
        }
        for o in obls {
            self.report(Finding {
                kind: FindingKind::ObligationLeak,
                slots: (o.slot, None),
                subject: format!("{} ({})", o.subject, o.kind),
                clocks: (None, None),
                seed: None,
                detail: "protocol obligation never discharged by world teardown".into(),
            });
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreceived_message_is_a_leak() {
        let s = Session::new(2, Mode::Collect);
        s.set_seed(Some(7));
        let mut clock = VectorClock::new(2);
        clock.tick(0);
        let id = s.register_send(MsgMeta {
            from: 0,
            to: 1,
            tag: "tag 9".into(),
            clock,
        });
        assert_eq!(s.finish_world(), 1);
        let f = s.findings();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::MessageLeak);
        assert_eq!(f[0].slots, (0, Some(1)));
        assert_eq!(f[0].seed, Some(7));
        let _ = id;
    }

    #[test]
    fn received_message_is_clean() {
        let s = Session::new(2, Mode::Collect);
        let id = s.register_send(MsgMeta {
            from: 0,
            to: 1,
            tag: "tag 9".into(),
            clock: VectorClock::new(2),
        });
        s.register_recv(id);
        assert_eq!(s.finish_world(), 0);
        assert!(s.findings().is_empty());
    }

    #[test]
    fn open_publish_is_a_view_leak() {
        let s = Session::new(4, Mode::Collect);
        let id = s.register_publish(2, "data@catalyst");
        s.check_view_leaks(2, "Bridge::finalize");
        let f = s.findings();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::ViewLeak);
        assert_eq!(f[0].slots.0, 2);
        s.clear_findings();
        s.release_publish(id);
        s.check_view_leaks(2, "Bridge::finalize");
        assert!(s.findings().is_empty());
    }

    #[test]
    fn undischarged_obligation_is_a_leak() {
        let s = Session::new(4, Mode::Collect);
        let kept = s.open_obligation(1, "offload-workers", "Bridge::enable_offload(2)");
        let closed = s.open_obligation(3, "query-client", "steer@rank3");
        s.close_obligation(closed);
        // Per-slot check (the finalize path): only slot 1's leak fires.
        s.check_obligations(3, "Bridge::finalize");
        assert!(s.findings().is_empty());
        s.check_obligations(1, "Bridge::finalize");
        let f = s.findings();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::ObligationLeak);
        assert_eq!(f[0].slots, (1, None));
        assert!(f[0].subject.contains("offload-workers"), "{}", f[0].subject);
        s.clear_findings();
        // World teardown reports it too, then closing silences it.
        assert_eq!(s.finish_world(), 1);
        s.clear_findings();
        s.close_obligation(kept);
        assert_eq!(s.finish_world(), 0);
    }

    #[test]
    #[should_panic(expected = "message-leak")]
    fn panic_mode_panics_on_report() {
        let s = Session::new(2, Mode::Panic);
        s.register_send(MsgMeta {
            from: 0,
            to: 1,
            tag: "tag 1".into(),
            clock: VectorClock::new(2),
        });
        s.finish_world();
    }
}
