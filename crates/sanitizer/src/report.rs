//! Findings: what the sanitizer reports and how it renders.
//!
//! Every finding carries enough to reproduce it: the scheduler seed of
//! the run (when the world ran under `SchedPolicy::Seeded`), the rank
//! pair involved, and the vector-clock evidence showing the two events
//! are concurrent (neither happens-before the other).

use std::fmt;

use probe::Json;

use crate::clock::VectorClock;

/// What kind of hazard a finding describes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// A rank mutated an array while a zero-copy publish window to an
    /// endpoint was open (or closed without a happens-before edge to
    /// the writer).
    UseAfterPublish,
    /// A rank wrote a tuple its decomposition marked as a ghost copy
    /// (`vtkGhostType` non-zero): the owning rank's value is
    /// authoritative and the write will be silently dropped or
    /// double-counted downstream.
    GhostWrite,
    /// A message was sent but never received by world teardown.
    MessageLeak,
    /// A zero-copy publish window was still open at
    /// `Bridge::finalize` — the endpoint kept a borrowed view alive
    /// past the bridge's lifetime.
    ViewLeak,
    /// A protocol obligation — an offload worker pool, a live query
    /// client registration, an open publish window's RAII pairing —
    /// was acquired but never discharged by the matching release call
    /// before finalize/teardown.
    ObligationLeak,
    /// Code executing in one memory space touched an array whose
    /// bytes live in another without an explicit transfer
    /// (`move_to`/`snapshot_in`). Works mechanically on the simulated
    /// device (it is host RAM) but is a missing-transfer bug on a
    /// real heterogeneous node.
    WrongSpaceAccess,
}

impl FindingKind {
    /// Stable machine-readable tag (used in JSON reports and tests).
    pub fn tag(&self) -> &'static str {
        match self {
            FindingKind::UseAfterPublish => "use-after-publish",
            FindingKind::GhostWrite => "ghost-write",
            FindingKind::MessageLeak => "message-leak",
            FindingKind::ViewLeak => "view-leak",
            FindingKind::ObligationLeak => "obligation-leak",
            FindingKind::WrongSpaceAccess => "wrong-space-access",
        }
    }
}

/// One detected hazard, with replay provenance.
#[derive(Clone, Debug)]
pub struct Finding {
    pub kind: FindingKind,
    /// The two slots involved: for use-after-publish, (writer,
    /// publisher); for ghost writes, (writer, owner-if-known); for
    /// leaks, (sender, intended receiver).
    pub slots: (usize, Option<usize>),
    /// Array name, endpoint, or message tag the hazard touched.
    pub subject: String,
    /// Vector clocks of the two unordered events, when applicable:
    /// (earlier/publish/send clock, later/write clock).
    pub clocks: (Option<VectorClock>, Option<VectorClock>),
    /// Scheduler seed of the offending run, if the world was seeded.
    pub seed: Option<u64>,
    /// Free-form one-line detail.
    pub detail: String,
}

impl Finding {
    /// Serialize for artifact upload (`results/sanitizer_*.json`).
    pub fn to_json(&self) -> Json {
        let opt_clock = |c: &Option<VectorClock>| match c {
            Some(c) => Json::Str(c.to_string()),
            None => Json::Null,
        };
        Json::Obj(vec![
            ("kind".into(), Json::Str(self.kind.tag().into())),
            ("slot".into(), Json::Num(self.slots.0 as f64)),
            (
                "peer_slot".into(),
                match self.slots.1 {
                    Some(peer) => Json::Num(peer as f64),
                    None => Json::Null,
                },
            ),
            ("subject".into(), Json::Str(self.subject.clone())),
            ("first_clock".into(), opt_clock(&self.clocks.0)),
            ("second_clock".into(), opt_clock(&self.clocks.1)),
            (
                "seed".into(),
                match self.seed {
                    Some(s) => Json::Num(s as f64),
                    None => Json::Null,
                },
            ),
            ("detail".into(), Json::Str(self.detail.clone())),
        ])
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sanitizer[{}] slot {}", self.kind.tag(), self.slots.0)?;
        if let Some(peer) = self.slots.1 {
            write!(f, " vs slot {peer}")?;
        }
        write!(f, ": {} — {}", self.subject, self.detail)?;
        if let (Some(a), Some(b)) = (&self.clocks.0, &self.clocks.1) {
            write!(f, " (clocks {a} vs {b}: unordered)")?;
        }
        if let Some(seed) = self.seed {
            write!(f, " [replay with SchedPolicy::Seeded({seed})]")?;
        }
        Ok(())
    }
}

/// Render a batch of findings as a JSON array string for artifacts.
pub fn findings_to_json(findings: &[Finding]) -> String {
    Json::Arr(findings.iter().map(Finding::to_json).collect()).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_seed_and_clocks() {
        let mut a = VectorClock::new(2);
        a.tick(0);
        let mut b = VectorClock::new(2);
        b.tick(1);
        let f = Finding {
            kind: FindingKind::UseAfterPublish,
            slots: (1, Some(0)),
            subject: "data@catalyst".into(),
            clocks: (Some(a), Some(b)),
            seed: Some(42),
            detail: "write during open publish window".into(),
        };
        let s = f.to_string();
        assert!(s.contains("use-after-publish"), "{s}");
        assert!(s.contains("slot 1 vs slot 0"), "{s}");
        assert!(s.contains("[1,0]"), "{s}");
        assert!(s.contains("Seeded(42)"), "{s}");
    }

    #[test]
    fn json_round_trips_the_tag() {
        let f = Finding {
            kind: FindingKind::MessageLeak,
            slots: (2, Some(3)),
            subject: "tag 7".into(),
            clocks: (None, None),
            seed: None,
            detail: "sent but never received".into(),
        };
        let s = findings_to_json(&[f]);
        assert!(s.starts_with('[') && s.ends_with(']'));
        assert!(s.contains("\"message-leak\""), "{s}");
        assert!(
            s.contains("\"peer_slot\":null")
                || s.contains("\"peer_slot\": null")
                || s.contains("\"peer_slot\":3"),
            "{s}"
        );
    }
}
