//! Per-rank sanitizer context: a thread-local holding this rank's
//! vector clock and a handle to the world's [`Session`].
//!
//! minimpi's worlds are thread-backed (one thread per rank), so a
//! thread-local is exactly per-rank state. Worker threads an analysis
//! spawns have no context; every hook degrades to a no-op there, and
//! everywhere when no session is installed — the disabled path is one
//! thread-local read.

use std::cell::RefCell;
use std::sync::Arc;

use crate::clock::{Stamp, VectorClock};
use crate::session::{MsgMeta, Session};

struct RankCtx {
    session: Arc<Session>,
    slot: usize,
    clock: VectorClock,
}

thread_local! {
    static CTX: RefCell<Option<RankCtx>> = const { RefCell::new(None) };
}

/// Install the sanitizer on this rank thread; uninstalls (restoring
/// any previous context) when the guard drops.
pub fn install(session: Arc<Session>, slot: usize) -> CtxGuard {
    let clock = VectorClock::new(session.size());
    let prev = CTX.with(|c| {
        c.replace(Some(RankCtx {
            session,
            slot,
            clock,
        }))
    });
    CtxGuard { prev }
}

/// Restores the previous context on drop; see [`install`].
pub struct CtxGuard {
    prev: Option<RankCtx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX.with(|c| {
            *c.borrow_mut() = self.prev.take();
        });
    }
}

/// Is a sanitizer context active on this thread?
pub fn active() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// The active session, if any (cheap Arc clone).
pub fn session() -> Option<Arc<Session>> {
    CTX.with(|c| c.borrow().as_ref().map(|ctx| Arc::clone(&ctx.session)))
}

/// This thread's world-wide rank slot, if a context is active.
pub fn slot() -> Option<usize> {
    CTX.with(|c| c.borrow().as_ref().map(|ctx| ctx.slot))
}

/// A local visible event (an array write, a publish open/close): tick
/// this rank's clock and return `(session, slot, clock-after-tick)`.
/// `None` when no context is active — callers skip their check.
pub fn local_event() -> Option<(Arc<Session>, usize, VectorClock)> {
    CTX.with(|c| {
        let mut b = c.borrow_mut();
        let ctx = b.as_mut()?;
        let slot = ctx.slot;
        ctx.clock.tick(slot);
        Some((Arc::clone(&ctx.session), slot, ctx.clock.clone()))
    })
}

/// Send hook: tick, register the message as in flight, and return the
/// [`Stamp`] to piggyback on the envelope. `tag` is rendered lazily so
/// the disabled path never formats.
pub fn on_send(to_slot: usize, tag: impl FnOnce() -> String) -> Option<Stamp> {
    CTX.with(|c| {
        let mut b = c.borrow_mut();
        let ctx = b.as_mut()?;
        let from_slot = ctx.slot;
        ctx.clock.tick(from_slot);
        let clock = ctx.clock.clone();
        let msg_id = ctx.session.register_send(MsgMeta {
            from: from_slot,
            to: to_slot,
            tag: tag(),
            clock: clock.clone(),
        });
        Some(Stamp {
            from_slot,
            clock,
            msg_id,
        })
    })
}

/// The send never entered the receiver's queue (channel closed):
/// retract the in-flight registration so teardown doesn't call it a
/// leak.
pub fn cancel_send(stamp: &Stamp) {
    if let Some(s) = session() {
        s.cancel_send(stamp.msg_id);
    }
}

/// Delivery hook: merge the sender's clock into ours (the
/// happens-before edge), tick for the receive event, and clear the
/// in-flight registration.
pub fn on_recv(stamp: &Stamp) {
    CTX.with(|c| {
        let mut b = c.borrow_mut();
        let Some(ctx) = b.as_mut() else { return };
        ctx.clock.merge(&stamp.clock);
        ctx.clock.tick(ctx.slot);
        ctx.session.register_recv(stamp.msg_id);
    });
}

/// Report a wrong-space access: code executing in space `have_exec`
/// touched array `subject` whose bytes live in `array_space`, with no
/// explicit transfer in between. A local visible event (ticks the
/// clock so the finding carries evidence); no-op without a context —
/// worker threads rely on the rank-thread launch sites being checked.
pub fn report_wrong_space(subject: &str, array_space: &str, have_exec: &str) {
    let Some((session, slot, clock)) = local_event() else {
        return;
    };
    session.report(crate::report::Finding {
        kind: crate::report::FindingKind::WrongSpaceAccess,
        slots: (slot, None),
        subject: subject.to_string(),
        clocks: (None, Some(clock)),
        seed: None,
        detail: format!(
            "bytes live in {array_space} but were accessed from {have_exec} \
             without an explicit move_to/snapshot_in transfer"
        ),
    });
}

/// View-leak check for this rank (called from `Bridge::finalize`):
/// any publish window this slot still holds open is reported. No-op
/// without a context.
pub fn check_view_leaks(location: &str) {
    CTX.with(|c| {
        let b = c.borrow();
        let Some(ctx) = b.as_ref() else { return };
        ctx.session.check_view_leaks(ctx.slot, location);
    });
}

/// Open a protocol obligation for this rank: `kind` names the
/// protocol (`offload-workers`, `query-client`, ...), `subject` the
/// concrete resource. Returns the id to pass to [`close_obligation`]
/// when the matching release runs, or `None` without a context (the
/// caller keeps the `None` and both calls are no-ops).
pub fn open_obligation(kind: &str, subject: &str) -> Option<u64> {
    CTX.with(|c| {
        let b = c.borrow();
        let ctx = b.as_ref()?;
        Some(ctx.session.open_obligation(ctx.slot, kind, subject))
    })
}

/// Discharge an obligation opened by [`open_obligation`]. No-op for
/// `None` (no context was active at the open).
pub fn close_obligation(id: Option<u64>) {
    if let Some(id) = id {
        if let Some(s) = session() {
            s.close_obligation(id);
        }
    }
}

/// Obligation-leak check for this rank (called from
/// `Bridge::finalize` after the analyses shut down): every obligation
/// this slot still holds open is reported. No-op without a context.
pub fn check_obligations(location: &str) {
    CTX.with(|c| {
        let b = c.borrow();
        let Some(ctx) = b.as_ref() else { return };
        ctx.session.check_obligations(ctx.slot, location);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Mode;

    #[test]
    fn hooks_are_noops_without_context() {
        assert!(!active());
        assert!(on_send(1, || "t".into()).is_none());
        assert!(local_event().is_none());
        check_view_leaks("nowhere");
    }

    #[test]
    fn send_recv_builds_a_happens_before_edge() {
        let session = Session::new(2, Mode::Collect);
        // Two "ranks" simulated sequentially on one thread via nested
        // installs (the guard restores the outer context).
        let stamp = {
            let _g0 = install(Arc::clone(&session), 0);
            on_send(1, || "tag 5".into()).expect("ctx installed")
        };
        let write_clock = {
            let _g1 = install(Arc::clone(&session), 1);
            on_recv(&stamp);
            local_event().expect("ctx installed").2
        };
        assert!(stamp.clock.happens_before(&write_clock));
        // Delivered: no leak at teardown.
        assert_eq!(session.finish_world(), 0);
    }

    #[test]
    fn guard_restores_previous_context() {
        let session = Session::new(2, Mode::Collect);
        let _g0 = install(Arc::clone(&session), 0);
        assert_eq!(slot(), Some(0));
        {
            let _g1 = install(Arc::clone(&session), 1);
            assert_eq!(slot(), Some(1));
        }
        assert_eq!(slot(), Some(0));
    }
}
