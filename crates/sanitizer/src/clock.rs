//! Vector clocks: the partial order behind every happens-before check.
//!
//! One clock per rank *slot* (a slot is minimpi's world-wide thread
//! index, stable across `Comm::split`). A rank ticks its own component
//! on every visible event (send, receive, array write) and merges the
//! sender's clock into its own on delivery, so `a.happens_before(b)`
//! holds exactly when a chain of messages orders event `a` before
//! event `b`.

use std::fmt;

/// A per-rank vector clock over `n` slots.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    /// The zero clock for a world of `n` slots.
    pub fn new(n: usize) -> Self {
        VectorClock(vec![0; n])
    }

    /// Number of slots this clock covers.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the clock covers no slots (degenerate worlds only).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// This slot's own component.
    pub fn get(&self, slot: usize) -> u64 {
        self.0.get(slot).copied().unwrap_or(0)
    }

    /// Advance `slot`'s component by one: a new local event.
    pub fn tick(&mut self, slot: usize) {
        if let Some(c) = self.0.get_mut(slot) {
            *c += 1;
        }
    }

    /// Component-wise maximum: learn everything `other` knew.
    pub fn merge(&mut self, other: &VectorClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// `self ≤ other` component-wise: every event this clock has seen
    /// is also in `other`'s past. This is the happens-before-or-equal
    /// test the shadow state uses — a release stamped `self` orders
    /// before a write stamped `other` iff this returns true.
    pub fn happens_before_or_eq(&self, other: &VectorClock) -> bool {
        if self.0.len() > other.0.len() && self.0[other.0.len()..].iter().any(|&c| c != 0) {
            return false;
        }
        self.0
            .iter()
            .zip(other.0.iter())
            .all(|(mine, theirs)| mine <= theirs)
    }

    /// Strict happens-before: `self ≤ other` and `self != other`.
    pub fn happens_before(&self, other: &VectorClock) -> bool {
        self.happens_before_or_eq(other) && self != other
    }

    /// Neither orders before the other: the two events are racing.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        !self.happens_before_or_eq(other) && !other.happens_before_or_eq(self)
    }
}

impl fmt::Display for VectorClock {
    /// Compact evidence form used in findings: `[3,0,7,1]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

/// The happens-before metadata piggybacked on a message envelope: the
/// sender's slot and clock at send time, plus the session-unique
/// message id used for leak accounting.
#[derive(Clone, Debug)]
pub struct Stamp {
    /// Sender's world-wide slot.
    pub from_slot: usize,
    /// Sender's clock immediately after ticking for the send.
    pub clock: VectorClock,
    /// Session-unique id; unreceived ids at teardown are leaks.
    pub msg_id: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_chain_orders_events() {
        // Rank 0 sends to rank 1; 0's pre-send event happens-before
        // 1's post-receive event.
        let mut a = VectorClock::new(3);
        a.tick(0); // event on 0
        let mut b = VectorClock::new(3);
        b.merge(&a); // delivery
        b.tick(1);
        assert!(a.happens_before(&b));
        assert!(!b.happens_before_or_eq(&a));
    }

    #[test]
    fn independent_events_are_concurrent() {
        let mut a = VectorClock::new(2);
        a.tick(0);
        let mut b = VectorClock::new(2);
        b.tick(1);
        assert!(a.concurrent_with(&b));
        assert!(b.concurrent_with(&a));
        assert!(!a.happens_before(&b));
    }

    #[test]
    fn equal_clocks_order_weakly_not_strictly() {
        let mut a = VectorClock::new(2);
        a.tick(0);
        let b = a.clone();
        assert!(a.happens_before_or_eq(&b));
        assert!(!a.happens_before(&b));
        assert!(!a.concurrent_with(&b));
    }

    #[test]
    fn merge_is_component_max() {
        let mut a = VectorClock::new(3);
        a.tick(0);
        a.tick(0);
        let mut b = VectorClock::new(3);
        b.tick(2);
        b.merge(&a);
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 0);
        assert_eq!(b.get(2), 1);
    }

    #[test]
    fn display_is_compact() {
        let mut a = VectorClock::new(3);
        a.tick(1);
        assert_eq!(a.to_string(), "[0,1,0]");
    }
}
