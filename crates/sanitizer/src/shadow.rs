//! Shadow state: the per-array happens-before ledger.
//!
//! Every shared (zero-copy capable) `DataArray` created while a
//! sanitizer context is active carries an `Arc<Shadow>`. Clones of the
//! array share the shadow — the sanitizer follows the *lineage* of the
//! data, not the allocation, because the model's copy-on-write buffers
//! can silently fork storage while the logical array (what the
//! simulation publishes and the endpoint reads) is one object.
//!
//! The ledger records, per array: open and recently-closed zero-copy
//! publish windows (with the publishing slot and clocks), the last
//! write and last read events, and — once the array's dataset carries
//! a `vtkGhostType` array — the ghost flags used to police tuple
//! writes.
//!
//! The write rule: a write at clock `C` by slot `w` races a publish
//! window `p` unless the window closed *and* its release
//! happens-before-or-equals `C` (or the writer is the publisher
//! itself, whose program order is the edge). Windows proven ordered
//! are pruned, so the ledger stays O(open windows).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::VectorClock;
use crate::ctx;
use crate::report::{Finding, FindingKind};

/// How many closed-but-unordered publish records a shadow retains
/// before discarding the oldest. Bounds memory on pathological
/// schedules; 64 windows is far beyond any real pipeline depth here.
const MAX_RECORDS: usize = 64;

/// One zero-copy publish window on an array.
#[derive(Clone, Debug)]
struct PublishRecord {
    /// Where the view was staged ("catalyst", "libsim", "adios", ...).
    endpoint: String,
    /// Slot that opened the window.
    slot: usize,
    /// Session publish id (for view-leak accounting).
    pub_id: u64,
    /// Clock when the window opened.
    start: VectorClock,
    /// Clock when the window closed; `None` while the view is staged.
    released: Option<VectorClock>,
}

#[derive(Default)]
struct ShadowState {
    publishes: Vec<PublishRecord>,
    last_write: Option<(usize, VectorClock)>,
    last_read: Option<(usize, VectorClock)>,
    /// Last explicit cross-space transfer: `(slot, "from->to", clock)`.
    /// The transfer clock is the happens-before edge that makes the
    /// device-side copy race-free: it is ordered after every write the
    /// rank made before snapshotting, and the device only ever reads
    /// the copy.
    last_transfer: Option<(usize, String, VectorClock)>,
    ghosts: Option<Arc<Vec<u8>>>,
}

/// The shadow ledger attached to one `DataArray` lineage.
pub struct Shadow {
    name: String,
    state: Mutex<ShadowState>,
}

impl Shadow {
    /// A fresh ledger for the array `name`.
    pub fn new(name: &str) -> Arc<Shadow> {
        Arc::new(Shadow {
            name: name.to_string(),
            state: Mutex::new(ShadowState::default()),
        })
    }

    /// The array name this ledger shadows.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attach ghost flags (one `u8` per tuple; non-zero = ghost copy)
    /// so tuple-level writes can be policed. Idempotent; the last
    /// armed flags win.
    pub fn arm_ghosts(&self, flags: Arc<Vec<u8>>) {
        self.state.lock().ghosts = Some(flags);
    }

    /// Open a zero-copy publish window to `endpoint`. Ticks the
    /// rank's clock (opening a window is a visible event). Returns a
    /// token for [`Shadow::end_publish`]; `None` (and no effect)
    /// without an active context.
    pub fn begin_publish(&self, endpoint: &str) -> Option<u64> {
        let (session, slot, clock) = ctx::local_event()?;
        let pub_id = session.register_publish(slot, &format!("{}@{}", self.name, endpoint));
        let mut state = self.state.lock();
        if state.publishes.len() >= MAX_RECORDS {
            state.publishes.remove(0);
        }
        state.publishes.push(PublishRecord {
            endpoint: endpoint.to_string(),
            slot,
            pub_id,
            start: clock,
            released: None,
        });
        Some(pub_id)
    }

    /// Close the publish window `pub_id`: the endpoint is done with
    /// the view. The closing rank's clock becomes the release stamp —
    /// later writes are safe iff that stamp happens-before them.
    pub fn end_publish(&self, pub_id: u64) {
        let Some((session, _slot, clock)) = ctx::local_event() else {
            return;
        };
        session.release_publish(pub_id);
        let mut state = self.state.lock();
        if let Some(p) = state.publishes.iter_mut().find(|p| p.pub_id == pub_id) {
            p.released = Some(clock);
        }
    }

    /// A write to the whole array (bulk mutation, COW fork, slice
    /// handout for writing). Checks every publish window, reporting a
    /// use-after-publish for each one not ordered before this write.
    pub fn on_write(&self) {
        let Some((session, slot, clock)) = ctx::local_event() else {
            return;
        };
        self.check_write(&session, slot, &clock);
    }

    /// A write to one tuple (`DataArray::set`): the whole-array check
    /// plus the ghost rule — a rank must never write a tuple its
    /// decomposition marks as a ghost copy.
    pub fn on_write_tuple(&self, tuple: usize) {
        let Some((session, slot, clock)) = ctx::local_event() else {
            return;
        };
        let ghost = {
            let state = self.state.lock();
            state
                .ghosts
                .as_ref()
                .map(|g| g.get(tuple).copied().unwrap_or(0))
                .unwrap_or(0)
        };
        if ghost != 0 {
            session.report(Finding {
                kind: FindingKind::GhostWrite,
                slots: (slot, None),
                subject: self.name.clone(),
                clocks: (None, Some(clock.clone())),
                seed: None,
                detail: format!(
                    "write to tuple {tuple}, a ghost copy (vtkGhostType={ghost}); \
                     the owning rank's value is authoritative"
                ),
            });
        }
        self.check_write(&session, slot, &clock);
    }

    /// A read borrow (`typed_slice` / `component_slice` / leaf view).
    /// Reads are always safe against open windows (both sides read);
    /// the event is recorded as the last-reader epoch for evidence.
    pub fn on_read(&self) {
        let Some((_session, slot, clock)) = ctx::local_event() else {
            return;
        };
        self.state.lock().last_read = Some((slot, clock));
    }

    /// An explicit cross-space transfer (`move_to` / `snapshot_in`)
    /// of this array's bytes from `from` to `to`. A visible event:
    /// ticks the rank's clock and records it as the transfer edge.
    /// The snapshot the transfer produced is ordered after every
    /// prior write by program order, so later host writes cannot race
    /// the device copy — which is exactly what makes the async
    /// overlap provable. Reads are window-safe, so no publish check.
    pub fn on_transfer(&self, from: &str, to: &str) {
        let Some((_session, slot, clock)) = ctx::local_event() else {
            return;
        };
        let mut state = self.state.lock();
        state.last_transfer = Some((slot, format!("{from}->{to}"), clock.clone()));
        state.last_read = Some((slot, clock));
    }

    /// Last transfer `(slot, "from->to", clock)`, if any was observed.
    pub fn last_transfer(&self) -> Option<(usize, String, VectorClock)> {
        self.state.lock().last_transfer.clone()
    }

    /// Last writer `(slot, clock)`, if any write was observed.
    pub fn last_write(&self) -> Option<(usize, VectorClock)> {
        self.state.lock().last_write.clone()
    }

    /// Last reader `(slot, clock)`, if any read was observed.
    pub fn last_read(&self) -> Option<(usize, VectorClock)> {
        self.state.lock().last_read.clone()
    }

    /// Number of publish windows still open (tests / diagnostics).
    pub fn open_publishes(&self) -> usize {
        self.state
            .lock()
            .publishes
            .iter()
            .filter(|p| p.released.is_none())
            .count()
    }

    fn check_write(&self, session: &crate::session::Session, slot: usize, clock: &VectorClock) {
        let mut state = self.state.lock();
        let mut keep = Vec::with_capacity(state.publishes.len());
        for p in state.publishes.drain(..) {
            match &p.released {
                // Open window: ANY write races the staged view — even
                // the publisher's own (that is exactly the
                // mutate-mid-publish bug).
                None => {
                    session.report(Finding {
                        kind: FindingKind::UseAfterPublish,
                        slots: (slot, Some(p.slot)),
                        subject: format!("{}@{}", self.name, p.endpoint),
                        clocks: (Some(p.start.clone()), Some(clock.clone())),
                        seed: None,
                        detail: "array mutated while a zero-copy view is staged \
                                 (no happens-before edge from the publish window)"
                            .into(),
                    });
                    keep.push(p);
                }
                // Closed by the writer itself: program order is the
                // happens-before edge. Window proven safe — prune.
                Some(_) if p.slot == slot => {}
                // Closed and the release is ordered before this
                // write: safe — prune.
                Some(rel) if rel.happens_before_or_eq(clock) => {}
                // Closed, but no message chain orders the release
                // before this write: the endpoint may still have been
                // reading when the bytes changed.
                Some(rel) => {
                    session.report(Finding {
                        kind: FindingKind::UseAfterPublish,
                        slots: (slot, Some(p.slot)),
                        subject: format!("{}@{}", self.name, p.endpoint),
                        clocks: (Some(rel.clone()), Some(clock.clone())),
                        seed: None,
                        detail: "write concurrent with a zero-copy publish release \
                                 (release not ordered before the write)"
                            .into(),
                    });
                    keep.push(p);
                }
            }
        }
        state.publishes = keep;
        state.last_write = Some((slot, clock.clone()));
    }
}

impl std::fmt::Debug for Shadow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shadow")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::install;
    use crate::session::{Mode, Session};

    #[test]
    fn write_during_open_window_is_use_after_publish() {
        let session = Session::new(1, Mode::Collect);
        let _g = install(Arc::clone(&session), 0);
        let shadow = Shadow::new("data");
        let id = shadow.begin_publish("catalyst").expect("ctx active");
        shadow.on_write();
        let f = session.findings();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::UseAfterPublish);
        assert_eq!(f[0].subject, "data@catalyst");
        shadow.end_publish(id);
    }

    #[test]
    fn write_after_release_in_program_order_is_clean() {
        let session = Session::new(1, Mode::Collect);
        let _g = install(Arc::clone(&session), 0);
        let shadow = Shadow::new("data");
        let id = shadow.begin_publish("libsim").expect("ctx active");
        shadow.end_publish(id);
        shadow.on_write();
        assert!(session.findings().is_empty());
        // Window pruned once proven ordered.
        assert_eq!(shadow.open_publishes(), 0);
    }

    #[test]
    fn cross_rank_write_needs_a_message_edge() {
        let session = Session::new(2, Mode::Collect);
        let shadow = Shadow::new("data");
        // Rank 0 publishes and releases...
        let stamp = {
            let _g0 = install(Arc::clone(&session), 0);
            let id = shadow.begin_publish("adios").expect("ctx");
            shadow.end_publish(id);
            // ...and tells rank 1 it is done.
            crate::ctx::on_send(1, || "done".into()).expect("ctx")
        };
        // Rank 1 writes WITHOUT receiving the message: racy.
        {
            let _g1 = install(Arc::clone(&session), 1);
            shadow.on_write();
            let f = session.findings();
            assert_eq!(f.len(), 1);
            assert_eq!(f[0].kind, FindingKind::UseAfterPublish);
            assert_eq!(f[0].slots, (1, Some(0)));
        }
        session.clear_findings();
        // Rank 1 writes AFTER receiving: the edge orders the release
        // before the write — clean.
        {
            let _g1 = install(Arc::clone(&session), 1);
            crate::ctx::on_recv(&stamp);
            shadow.on_write();
            assert!(
                session.findings().is_empty(),
                "release → send → recv → write is ordered"
            );
        }
    }

    #[test]
    fn ghost_tuple_write_is_reported() {
        let session = Session::new(1, Mode::Collect);
        let _g = install(Arc::clone(&session), 0);
        let shadow = Shadow::new("data");
        shadow.arm_ghosts(Arc::new(vec![0, 1, 0]));
        shadow.on_write_tuple(0);
        assert!(session.findings().is_empty(), "owned tuple is writable");
        shadow.on_write_tuple(1);
        let f = session.findings();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::GhostWrite);
        assert!(f[0].detail.contains("tuple 1"), "{}", f[0].detail);
    }

    #[test]
    fn reads_record_the_last_reader_epoch() {
        let session = Session::new(1, Mode::Collect);
        let _g = install(Arc::clone(&session), 0);
        let shadow = Shadow::new("data");
        assert!(shadow.last_read().is_none());
        shadow.on_read();
        let (slot, _clock) = shadow.last_read().expect("read recorded");
        assert_eq!(slot, 0);
        assert!(session.findings().is_empty(), "reads never race windows");
    }
}
