//! Happens-before sanitizer for the zero-copy data path.
//!
//! The paper's bridge is zero-copy: simulation and endpoint alias the
//! same arrays, and because this workspace's ranks are threads (not
//! MPI processes), a bad interleaving genuinely corrupts shared
//! memory instead of a private copy. This crate detects those
//! hazards:
//!
//! * **use-after-publish** — a rank mutates an array while a
//!   zero-copy view of it is staged to an endpoint, with no message
//!   chain ordering the release before the write;
//! * **ghost writes** — a rank writes a tuple its decomposition marks
//!   as a ghost copy (`vtkGhostType` non-zero);
//! * **message leaks** — sends never received by world teardown;
//! * **view leaks** — publish windows still open at
//!   `Bridge::finalize`;
//! * **obligation leaks** — protocol acquire/release pairs left open
//!   (offload worker pools never drained, query clients never leaving)
//!   at `Bridge::finalize` or world teardown.
//!
//! Mechanically: each rank thread installs a [`ctx`] holding a
//! [`VectorClock`]; minimpi ticks it per send, piggybacks a [`Stamp`]
//! on every envelope, and merges on delivery (collectives are built
//! on those sends, so their barriers join participants for free).
//! Shared `DataArray`s carry an `Arc<`[`Shadow`]`>` ledger of publish
//! windows and last writer/reader epochs; array mutations check the
//! happens-before rule against every window.
//!
//! **Off by default, zero cost when off**: every hook early-returns
//! on an empty thread-local; no clocks, shadows, or stamps are
//! allocated. Enable per-world with `WorldBuilder::sanitizer`, or
//! process-wide with `SENSEI_SANITIZER=1` (checked per world run, not
//! cached). Under `SchedPolicy::Seeded`/`Replay` every finding
//! carries the seed that deterministically reproduces it; the
//! `Explorer`'s race-hunting mode drives this in fuzzing campaigns.
//!
//! The crate deliberately never reads `probe::time` — a sanitized run
//! must stay bitwise-identical in its virtual-clock tick counts.

mod clock;
mod ctx;
mod report;
mod session;
mod shadow;

pub use clock::{Stamp, VectorClock};
pub use ctx::{
    active, cancel_send, check_obligations, check_view_leaks, close_obligation, install,
    local_event, on_recv, on_send, open_obligation, report_wrong_space, session, slot, CtxGuard,
};
pub use report::{findings_to_json, Finding, FindingKind};
pub use session::{Mode, MsgMeta, Session};
pub use shadow::Shadow;

/// Environment variable that force-enables the sanitizer for every
/// world (`1`/`true`/`on`, case-insensitive).
pub const ENV_VAR: &str = "SENSEI_SANITIZER";

/// Should worlds auto-install a sanitizer? Reads [`ENV_VAR`] on every
/// call (no caching) so a process can toggle it between runs — the
/// overhead benchmark measures on vs off in one binary.
pub fn env_enabled() -> bool {
    match std::env::var(ENV_VAR) {
        Ok(v) => matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "true" | "on"),
        Err(_) => false,
    }
}
