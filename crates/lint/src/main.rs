//! Workspace lint pass: the invariants the sanitizer relies on,
//! enforced as plain source checks (no external deps — the build
//! environment has no registry access, so this cannot be a clippy
//! plugin).
//!
//! ```text
//! cargo run -p lint            # lint crates/, shims/, src/, examples/, tests/
//! cargo run -p lint -- PATH..  # lint specific roots (used by the fixture tests)
//! ```
//!
//! Rules (see DESIGN.md §10 for rationale):
//!
//! * **R1 safety-comment** — every `unsafe` block carries a
//!   `// SAFETY:` comment (same line, or the contiguous comment block
//!   directly above). Applies everywhere, shims included.
//! * **R2 clock-discipline** — no `std::time::Instant`/`SystemTime`
//!   outside `probe::time` (its `Wall` type is the sanctioned
//!   wrapper). Measured durations must flow through
//!   `probe::time::now_seconds` to stay deterministic under the
//!   virtual clock. Skips shims, tests, benches, and fixtures.
//! * **R3 lock-shims** — no raw `std::sync` lock primitives (`Mutex`,
//!   `RwLock`, `Condvar`, `Barrier`) outside `shims/`; use the
//!   `parking_lot` shim (no poisoning → no `.lock().unwrap()`
//!   pattern, which R4 would reject anyway). `Arc`, atomics, and
//!   `OnceLock` are fine.
//! * **R4 no-unwrap-core** — no `.unwrap()`/`.expect(` in non-test
//!   code of `minimpi`, `datamodel`, `sensei`, `science`, `adios`,
//!   `glean`, and `query`: the substrate and the staging/aggregation
//!   data paths must surface failures as typed errors or structured
//!   panics (the monitor/scheduler reports), never ad-hoc unwraps.
//! * **R5 space-checked-access** — no raw `.typed_slice`/
//!   `.component_slice(` on arrays outside `datamodel`: those
//!   accessors bypass the memory-space check, so a device-resident
//!   array read through them silently aliases host bytes. Endpoints
//!   use `as_slice_in`/`component_slice_in`/`values_in`, which return
//!   a typed wrong-space error instead. Skips shims, tests, and
//!   benches.
//! * **R6 obligation** — protocol acquire/release calls must pair
//!   inside one function, matching what the sanitizer's obligation
//!   registry checks at `Bridge::finalize`: a `publish_dataset(` call
//!   must bind its RAII guard with a `let` (an unbound guard drops —
//!   and closes the window — immediately, silently disabling the
//!   use-after-publish check); a `.enable_offload(` call site must
//!   also name `finalize` or `shutdown_offload`; a `QueryHandle` join
//!   (`.join(` with arguments, in files that mention `QueryHandle`)
//!   must pair with `.leave(` or `finalize`. Skips shims, tests, and
//!   benches; `datamodel` (which defines the guard) is exempt from
//!   the publish leg.
//!
//! Test code is exempt from R2/R4/R5: `tests/`/`benches/` directories,
//! `fixtures/`, and `#[cfg(test)]` regions (tracked by brace depth).
//! Comments and string literals are stripped before matching, so a
//! doc mention of `Instant` does not trip the pass.

use std::fmt;
use std::path::{Path, PathBuf};

mod scan;

use scan::{strip_comments_and_strings, test_region_lines};

/// One rule violation.
struct Violation {
    rule: &'static str,
    path: PathBuf,
    line: usize,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Is this path inside a directory named `name` (component match)?
fn under_dir(path: &Path, name: &str) -> bool {
    path.components().any(|c| c.as_os_str() == name)
}

fn is_probe_time(path: &Path) -> bool {
    path.ends_with(Path::new("probe/src/time.rs"))
}

/// R2/R4 exemption: whole files that are test/bench code. Fixture
/// files are NOT exempt — they are skipped in default runs instead,
/// and linted with full strictness when named explicitly (that is how
/// the lint's own tests prove each rule fires).
fn is_test_file(path: &Path) -> bool {
    under_dir(path, "tests") || under_dir(path, "benches")
}

/// R4 applies only to the correctness core.
fn in_core_crate(path: &Path) -> bool {
    [
        "minimpi",
        "datamodel",
        "sensei",
        "science",
        "adios",
        "glean",
        "query",
    ]
    .iter()
    .any(|c| under_dir(path, c))
}

fn check_file(path: &Path, source: &str, out: &mut Vec<Violation>) {
    let raw_lines: Vec<&str> = source.lines().collect();
    let code = strip_comments_and_strings(source);
    let code_lines: Vec<&str> = code.lines().collect();
    let in_test = test_region_lines(&code_lines);

    let in_shims = under_dir(path, "shims");
    let file_is_test = is_test_file(path);

    for (i, &line) in code_lines.iter().enumerate() {
        let lineno = i + 1;
        let test_exempt = file_is_test || in_test.get(i).copied().unwrap_or(false);

        // R1: every `unsafe` keyword introducing a block needs a
        // `// SAFETY:` comment — on the same line, or anywhere in the
        // contiguous comment block immediately above (multi-line
        // SAFETY justifications are common). `unsafe` inside
        // strings/comments was already stripped.
        if scan::has_unsafe_intro(line) {
            // Same-line trailing comment counts (rare but legal).
            let mut found = raw_lines.get(i).is_some_and(|l| l.contains("SAFETY:"));
            let mut back = i;
            while !found && back > 0 {
                back -= 1;
                let above = raw_lines[back].trim_start();
                if !above.starts_with("//") {
                    break;
                }
                found = above.contains("SAFETY:");
            }
            if !found {
                out.push(Violation {
                    rule: "safety-comment",
                    path: path.to_path_buf(),
                    line: lineno,
                    message: "`unsafe` without a preceding `// SAFETY:` comment".into(),
                });
            }
        }

        // R2: clock discipline.
        if !in_shims && !file_is_test && !test_exempt && !is_probe_time(path) {
            for needle in [
                "std::time::Instant",
                "std::time::SystemTime",
                "time::Instant",
                "time::SystemTime",
            ] {
                if line.contains(needle) {
                    out.push(Violation {
                        rule: "clock-discipline",
                        path: path.to_path_buf(),
                        line: lineno,
                        message: format!(
                            "`{needle}` outside probe::time — use probe::time::now_seconds \
                             for measurement or probe::time::Wall for timeouts"
                        ),
                    });
                    break;
                }
            }
            // Bare `Instant`/`SystemTime` imported from std::time.
            if scan::imports_std_time_type(line) {
                out.push(Violation {
                    rule: "clock-discipline",
                    path: path.to_path_buf(),
                    line: lineno,
                    message: "importing Instant/SystemTime from std::time outside probe::time"
                        .into(),
                });
            }
        }

        // R3: raw std::sync lock primitives.
        if !in_shims && !test_exempt && !file_is_test {
            if let Some(prim) = scan::std_sync_primitive(line) {
                out.push(Violation {
                    rule: "lock-shims",
                    path: path.to_path_buf(),
                    line: lineno,
                    message: format!(
                        "raw `std::sync::{prim}` outside shims/ — use the parking_lot shim"
                    ),
                });
            }
        }

        // R4: unwrap/expect in core non-test code.
        if in_core_crate(path) && !file_is_test && !test_exempt {
            for needle in [".unwrap()", ".expect("] {
                if line.contains(needle) {
                    out.push(Violation {
                        rule: "no-unwrap-core",
                        path: path.to_path_buf(),
                        line: lineno,
                        message: format!(
                            "`{needle}` in non-test core-crate code — return an error or \
                             panic with a structured report"
                        ),
                    });
                }
            }
        }

        // R5: raw array accessors that skip the memory-space check.
        // Only `datamodel` itself may touch the bytes directly; every
        // other crate goes through the `_in(space)` accessors so a
        // device-resident array cannot be read as host memory.
        if !under_dir(path, "datamodel") && !in_shims && !file_is_test && !test_exempt {
            // `.component_slice` needs both spellings (turbofish and
            // plain call) so the bare name cannot also catch the
            // space-checked `component_slice_in`.
            for needle in [".typed_slice", ".component_slice(", ".component_slice::<"] {
                if line.contains(needle) {
                    out.push(Violation {
                        rule: "space-checked-access",
                        path: path.to_path_buf(),
                        line: lineno,
                        message: format!(
                            "`{needle}` outside datamodel bypasses the memory-space check — \
                             use as_slice_in/component_slice_in/values_in"
                        ),
                    });
                }
            }
        }
    }

    // R6: protocol-obligation pairing, checked per function body. The
    // sanitizer's obligation registry catches these leaks at runtime
    // (when it is on); this rule catches the static shape — acquire
    // without a paired release in the same function — everywhere.
    if !in_shims && !file_is_test {
        let mentions_query_handle = code.contains("QueryHandle");
        for &(start, end) in &scan::fn_regions(&code_lines) {
            if in_test.get(start).copied().unwrap_or(false) {
                continue;
            }
            let body = &code_lines[start..=end];
            let has = |needle: &str| body.iter().any(|l| l.contains(needle));
            for (k, &line) in body.iter().enumerate() {
                let lineno = start + k + 1;
                // Publish windows: the guard must be `let`-bound, or
                // it drops at end of statement and the window closes
                // before anything is checked against it. The binding
                // may sit a few lines up (`let _w = if active() {`).
                if !under_dir(path, "datamodel")
                    && line.contains("publish_dataset(")
                    && !line.contains("fn publish_dataset")
                {
                    let mut bound = line.contains("let ");
                    let mut m = k;
                    while !bound && m > 0 && k - m < 6 {
                        m -= 1;
                        let prev = body[m].trim_end();
                        if prev.contains("let ") {
                            bound = true;
                        } else if prev.ends_with(';') {
                            break;
                        }
                    }
                    if !bound {
                        out.push(Violation {
                            rule: "obligation",
                            path: path.to_path_buf(),
                            line: lineno,
                            message: "`publish_dataset(` guard not bound with `let` — \
                                      an unbound guard closes the window immediately"
                                .into(),
                        });
                    }
                }
                // Offload pools: whoever turns the executor on must
                // also reach the drain/teardown path.
                if line.contains(".enable_offload(") && !has("finalize") && !has("shutdown_offload")
                {
                    out.push(Violation {
                        rule: "obligation",
                        path: path.to_path_buf(),
                        line: lineno,
                        message: "`.enable_offload(` without `finalize`/`shutdown_offload` \
                                  in the same function — offload workers never drained"
                            .into(),
                    });
                }
                // Query clients: a join must pair with a leave (or the
                // server finalize). Gated to files that actually use
                // QueryHandle so slice/path `.join(...)` stays quiet;
                // `.join()` (thread handles) takes no arguments.
                if mentions_query_handle
                    && line.contains(".join(")
                    && !line.contains(".join()")
                    && !has(".leave(")
                    && !has("finalize")
                {
                    out.push(Violation {
                        rule: "obligation",
                        path: path.to_path_buf(),
                        line: lineno,
                        message: "`QueryHandle` `.join(` without `.leave(`/`finalize` in \
                                  the same function — client registration never released"
                            .into(),
                    });
                }
            }
        }
    }
}

fn walk(root: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == ".git" || name == "results" {
                continue;
            }
            walk(&path, files);
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let roots: Vec<PathBuf> = if args.is_empty() {
        ["crates", "shims", "src", "examples", "tests"]
            .iter()
            .map(PathBuf::from)
            .collect()
    } else {
        args.iter().map(PathBuf::from).collect()
    };

    let mut files = Vec::new();
    for root in &roots {
        if root.is_file() {
            files.push(root.clone());
        } else {
            walk(root, &mut files);
        }
    }
    // The lint's own fixtures intentionally violate every rule; skip
    // them in a default (whole-workspace) run, lint them only when
    // named explicitly.
    if args.is_empty() {
        files.retain(|f| !under_dir(f, "fixtures"));
    }

    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for file in &files {
        match std::fs::read_to_string(file) {
            Ok(source) => {
                scanned += 1;
                check_file(file, &source, &mut violations);
            }
            Err(e) => eprintln!("lint: skipping {}: {e}", file.display()),
        }
    }

    if violations.is_empty() {
        println!("lint: {scanned} files clean");
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!("lint: {} violation(s) in {scanned} files", violations.len());
        std::process::exit(1);
    }
}
