//! Source scanning helpers: a light lexer that strips comments and
//! string/char literals (preserving line structure so violation line
//! numbers stay exact), plus region detection for `#[cfg(test)]`
//! items and the token matchers the rules use.

/// Replace comments and string/char-literal contents with spaces,
/// keeping every newline, so downstream matchers only ever see code.
pub fn strip_comments_and_strings(source: &str) -> String {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut i = 0usize;
    let n = bytes.len();

    // Emit `c` verbatim if it's a newline, else a space.
    fn blank(out: &mut String, c: char) {
        out.push(if c == '\n' { '\n' } else { ' ' });
    }

    while i < n {
        let c = bytes[i];
        match c {
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                // Line comment: blank to end of line.
                while i < n && bytes[i] != '\n' {
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                // Block comment, nested per Rust.
                let mut depth = 0usize;
                while i < n {
                    if i + 1 < n && bytes[i] == '/' && bytes[i + 1] == '*' {
                        depth += 1;
                        blank(&mut out, bytes[i]);
                        blank(&mut out, bytes[i + 1]);
                        i += 2;
                    } else if i + 1 < n && bytes[i] == '*' && bytes[i + 1] == '/' {
                        depth -= 1;
                        blank(&mut out, bytes[i]);
                        blank(&mut out, bytes[i + 1]);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        blank(&mut out, bytes[i]);
                        i += 1;
                    }
                }
            }
            'r' if i + 1 < n && (bytes[i + 1] == '"' || bytes[i + 1] == '#') => {
                // Possible raw string r"..." / r#"..."#.
                let mut j = i + 1;
                let mut hashes = 0usize;
                while j < n && bytes[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && bytes[j] == '"' {
                    // It is a raw string; blank through the close.
                    out.push(' '); // the 'r'
                    for &b in &bytes[(i + 1)..=j] {
                        blank(&mut out, b);
                    }
                    i = j + 1;
                    'raw: while i < n {
                        if bytes[i] == '"' {
                            let mut k = i + 1;
                            let mut seen = 0usize;
                            while k < n && seen < hashes && bytes[k] == '#' {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                for &b in &bytes[i..k] {
                                    blank(&mut out, b);
                                }
                                i = k;
                                break 'raw;
                            }
                        }
                        blank(&mut out, bytes[i]);
                        i += 1;
                    }
                } else {
                    // `r#ident` raw identifier or plain 'r': keep.
                    out.push(c);
                    i += 1;
                }
            }
            '"' => {
                // String literal with escapes; blank the contents.
                blank(&mut out, c);
                i += 1;
                while i < n {
                    if bytes[i] == '\\' && i + 1 < n {
                        blank(&mut out, bytes[i]);
                        blank(&mut out, bytes[i + 1]);
                        i += 2;
                    } else if bytes[i] == '"' {
                        blank(&mut out, bytes[i]);
                        i += 1;
                        break;
                    } else {
                        blank(&mut out, bytes[i]);
                        i += 1;
                    }
                }
            }
            '\'' => {
                // Char literal or lifetime. A char literal closes with
                // a quote one (possibly escaped) scalar later; a
                // lifetime has no closing quote.
                if i + 2 < n && bytes[i + 1] == '\\' {
                    // Escaped char literal: blank to the closing quote.
                    blank(&mut out, bytes[i]);
                    i += 1;
                    while i < n && bytes[i] != '\'' {
                        blank(&mut out, bytes[i]);
                        i += 1;
                    }
                    if i < n {
                        blank(&mut out, bytes[i]);
                        i += 1;
                    }
                } else if i + 2 < n && bytes[i + 2] == '\'' {
                    blank(&mut out, bytes[i]);
                    blank(&mut out, bytes[i + 1]);
                    blank(&mut out, bytes[i + 2]);
                    i += 3;
                } else {
                    // Lifetime: keep the tick and identifier.
                    out.push(c);
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// For each (stripped) line, is it inside a `#[cfg(test)]` item? The
/// attribute line itself, the item header, and everything through the
/// item's closing brace are marked. Handles `#[cfg(all(test, ...))]`
/// too.
pub fn test_region_lines(lines: &[&str]) -> Vec<bool> {
    let mut out = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        let l = lines[i];
        let is_test_attr =
            l.contains("#[cfg(test)]") || (l.contains("#[cfg(all(") && l.contains("test"));
        if !is_test_attr {
            i += 1;
            continue;
        }
        let mut depth = 0i64;
        let mut started = false;
        let mut j = i;
        while j < lines.len() {
            out[j] = true;
            for c in lines[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        started = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if started && depth <= 0 {
                break;
            }
            // A braceless item (`#[cfg(test)] use ...;`) ends at the
            // first statement-terminating line.
            if !started && lines[j].trim_end().ends_with(';') {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    out
}

/// Function-body line ranges (inclusive, 0-based), found by tracking
/// brace depth from each `fn` item header in the (stripped) source.
/// Nested functions and closures stay inside their containing range —
/// R6 pairs acquire/release per *outermost* function, which is where
/// an RAII guard or finalize call discharges the obligation. Trait
/// method declarations (`fn f(...);`) have no body and no range.
/// Is this line a `fn` *item* header? The keyword must be followed by
/// an identifier (`fn name…`), which excludes fn-pointer types
/// (`fn(usize)`) and the `Fn(...)` closure traits.
fn is_fn_header(line: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = line[start..].find("fn ") {
        let at = start + pos;
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let rest = line[at + 3..].trim_start();
        if before_ok
            && rest
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            return true;
        }
        start = at + 3;
    }
    false
}

pub fn fn_regions(lines: &[&str]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < lines.len() {
        if !is_fn_header(lines[i]) {
            i += 1;
            continue;
        }
        let mut depth = 0i64;
        let mut started = false;
        let mut j = i;
        while j < lines.len() {
            for c in lines[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        started = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if started && depth <= 0 {
                break;
            }
            // Bodyless declaration (trait method, extern item).
            if !started && lines[j].trim_end().ends_with(';') {
                break;
            }
            j += 1;
        }
        if started {
            out.push((i, j.min(lines.len() - 1)));
        }
        i = j + 1;
    }
    out
}

/// Does `hay` contain `needle` as a whole identifier (not a fragment
/// of a longer `ident_like_this`)?
fn has_word(hay: &str, needle: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = after;
    }
    false
}

/// Does this (stripped) line open an `unsafe { ... }` block? Function
/// and impl headers (`unsafe fn`, `unsafe impl`) are the compiler's
/// department (`deny(unsafe_op_in_unsafe_fn)` forces explicit inner
/// blocks, which this rule then catches).
pub fn has_unsafe_intro(line: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = line[start..].find("unsafe") {
        let at = start + pos;
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + "unsafe".len();
        let rest = line[after..].trim_start();
        let after_ok = !line[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok && rest.starts_with('{') {
            return true;
        }
        start = after;
    }
    false
}

/// Does this line `use` Instant/SystemTime out of `std::time`?
pub fn imports_std_time_type(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("use ")
        && t.contains("std::time")
        && (has_word(t, "Instant") || has_word(t, "SystemTime"))
}

/// The raw `std::sync` lock primitive this line names, if any.
pub fn std_sync_primitive(line: &str) -> Option<&'static str> {
    if !line.contains("std::sync") {
        return None;
    }
    ["Mutex", "RwLock", "Condvar", "Barrier"]
        .into_iter()
        .find(|prim| has_word(line, prim))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let a = \"std::time::Instant\"; // std::sync::Mutex\nlet b = 1;";
        let out = strip_comments_and_strings(src);
        assert!(!out.contains("Instant"));
        assert!(!out.contains("Mutex"));
        assert_eq!(out.lines().count(), src.lines().count());
        assert!(out.contains("let b = 1;"));
    }

    #[test]
    fn nested_block_comments_strip() {
        let src = "a /* one /* two */ still */ b";
        let out = strip_comments_and_strings(src);
        assert!(out.contains('a') && out.contains('b'));
        assert!(!out.contains("two"));
        assert!(!out.contains("still"));
    }

    #[test]
    fn raw_strings_strip() {
        let src = "let s = r#\"unsafe { std::sync::Mutex }\"#; done";
        let out = strip_comments_and_strings(src);
        assert!(!out.contains("Mutex"));
        assert!(out.contains("done"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }";
        let out = strip_comments_and_strings(src);
        assert!(out.contains("<'a>"));
        assert!(!out.contains("'x'"));
        assert!(!out.contains("\\n"));
    }

    #[test]
    fn test_regions_cover_mod_to_close() {
        let lines = vec![
            "fn real() {",       // 0
            "}",                 // 1
            "#[cfg(test)]",      // 2
            "mod tests {",       // 3
            "    fn t() { x; }", // 4
            "}",                 // 5
            "fn after() {}",     // 6
        ];
        let marks = test_region_lines(&lines);
        assert_eq!(marks, vec![false, false, true, true, true, true, false]);
    }

    #[test]
    fn unsafe_block_detection() {
        assert!(has_unsafe_intro("let p = unsafe { System.alloc(l) };"));
        assert!(has_unsafe_intro("unsafe {"));
        assert!(!has_unsafe_intro("unsafe fn alloc(&self) {"));
        assert!(!has_unsafe_intro("unsafe impl Send for X {}"));
        assert!(!has_unsafe_intro("deny(unsafe_op_in_unsafe_fn)"));
        assert!(!has_unsafe_intro("// nothing here"));
    }

    #[test]
    fn fn_regions_span_bodies_and_skip_declarations() {
        let lines = vec![
            "struct S { f: fn(usize) -> bool }", // 0: pointer type, not a header
            "trait T {",                         // 1
            "    fn decl(&self);",               // 2: bodyless
            "}",                                 // 3
            "pub fn outer(x: u32) -> u32 {",     // 4
            "    let g = |y| y + 1;",            // 5
            "    fn inner(z: u32) -> u32 { z }", // 6: nested, stays inside
            "    g(inner(x))",                   // 7
            "}",                                 // 8
            "fn after() {}",                     // 9
        ];
        assert_eq!(fn_regions(&lines), vec![(4, 8), (9, 9)]);
    }

    #[test]
    fn matchers() {
        assert!(imports_std_time_type("use std::time::{Duration, Instant};"));
        assert!(!imports_std_time_type("use std::time::Duration;"));
        assert_eq!(std_sync_primitive("use std::sync::Mutex;"), Some("Mutex"));
        assert_eq!(std_sync_primitive("use std::sync::{Arc, OnceLock};"), None);
        assert_eq!(std_sync_primitive("let b = Barrier::new(2);"), None);
    }
}
