//! Fixture for R4 (no-unwrap-core): the `query` path component puts
//! this file in the interactive-endpoint core (joined the R4 list
//! with the obligation lint), where bare `unwrap`/`expect` are banned
//! outside test code.

fn r4_unwrap(v: Option<u32>) -> u32 {
    v.unwrap() // R4: no-unwrap-core
}

fn r4_expect(v: Option<u32>) -> u32 {
    v.expect("boom") // R4: no-unwrap-core
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(Some(1u32).unwrap(), 1);
    }
}
