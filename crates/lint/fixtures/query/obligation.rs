//! Fixture for R6 (obligation): acquire/release calls that do not
//! pair inside one function. Mentions QueryHandle so the join leg is
//! armed, exactly like the real interactive-endpoint code.

struct QueryHandle;

/// Unbound guard: drops (and closes the publish window) at the end of
/// the statement, before anything could be checked against it.
fn r6_unbound_publish(data: &u32) {
    datamodel::publish_dataset(data, "fixture"); // R6: obligation
}

/// Bound guards in all the shapes the real call sites use: clean.
fn r6_bound_publish(data: &u32, active: bool) {
    let _publish = datamodel::publish_dataset(data, "fixture");
    let _window = if active {
        Some(datamodel::publish_dataset(data, "fixture"))
    } else {
        None
    };
}

/// Offload turned on with no drain path in sight.
fn r6_offload_never_drained(bridge: &mut Bridge) {
    bridge.enable_offload(OffloadConfig::default()); // R6: obligation
}

/// Offload paired with finalize in the same function: clean.
fn r6_offload_finalized(bridge: &mut Bridge, comm: &Comm) {
    bridge.enable_offload(OffloadConfig::default());
    let _report = bridge.finalize(comm);
}

/// A client joined but never released.
fn r6_join_without_leave(handle: &QueryHandle) {
    handle.join(7, query(), "fixture"); // R6: obligation
}

/// Join paired with leave: clean. Thread-style `.join()` (no
/// arguments) never counts as a client join.
fn r6_join_then_leave(handle: &QueryHandle, worker: std::thread::JoinHandle<()>) {
    handle.join(7, query(), "fixture");
    handle.leave(7);
    let _ = worker.join();
}

#[cfg(test)]
mod tests {
    /// Test code is exempt from R6 like every pairing rule.
    fn unpaired_in_tests(handle: &super::QueryHandle) {
        datamodel::publish_dataset(&1, "fixture");
        handle.join(7, query(), "fixture");
    }
}
