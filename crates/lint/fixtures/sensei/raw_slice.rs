//! Fixture for R5 (space-checked-access): this file sits outside
//! `datamodel`, so the raw accessors that bypass the memory-space
//! check are banned — endpoints must use the `_in(space)` variants.

struct Arr;

impl Arr {
    fn typed_slice<T>(&self) -> Option<&[T]> {
        None
    }
    fn component_slice<T>(&self, _comp: usize) -> Option<&[T]> {
        None
    }
}

fn r5_typed(a: &Arr) -> bool {
    a.typed_slice::<f64>().is_some() // R5: space-checked-access
}

fn r5_component(a: &Arr) -> bool {
    a.component_slice::<f64>(0).is_some() // R5: space-checked-access
}

#[cfg(test)]
mod tests {
    #[test]
    fn raw_slices_are_fine_in_tests() {
        let a = super::Arr;
        assert!(a.typed_slice::<f64>().is_none());
        assert!(a.component_slice::<f64>(0).is_none());
    }
}
