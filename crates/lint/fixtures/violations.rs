//! Fixture exercising every lint rule. Never compiled — the lint
//! binary's integration tests point at this file and assert that each
//! rule fires. Skipped by default workspace runs (`fixtures/` dirs are
//! excluded unless named explicitly).

use std::time::Instant; // R2: clock-discipline (import form)
use std::sync::Mutex; // R3: lock-shims

fn r1_unsafe_without_safety(p: *const u8) -> u8 {
    unsafe { *p } // R1: safety-comment
}

fn r2_instant_use() -> f64 {
    let t0 = std::time::Instant::now(); // R2: clock-discipline
    t0.elapsed().as_secs_f64()
}

fn r3_lock_use() {
    let m = std::sync::Mutex::new(0u32); // R3: lock-shims
    let _ = m.lock();
}

fn ok_unsafe(p: *const u8) -> u8 {
    // SAFETY: fixture-only; the caller passes a valid pointer.
    unsafe { *p }
}
