//! End-to-end tests for the lint binary: the workspace fixtures must
//! trip every rule when named explicitly, stay invisible to default
//! runs, and a clean source must pass.

use std::path::PathBuf;
use std::process::Command;

fn lint_bin() -> &'static str {
    env!("CARGO_BIN_EXE_lint")
}

/// Repo root: this file lives at `crates/lint/tests/fixtures.rs`.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[test]
fn violating_fixture_trips_r1_r2_r3() {
    let out = Command::new(lint_bin())
        .current_dir(repo_root())
        .arg("crates/lint/fixtures/violations.rs")
        .output()
        .expect("lint binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "violating fixture must fail lint");
    assert!(stdout.contains("[safety-comment]"), "R1 fires: {stdout}");
    assert!(stdout.contains("[clock-discipline]"), "R2 fires: {stdout}");
    assert!(stdout.contains("[lock-shims]"), "R3 fires: {stdout}");
    // The commented `unsafe` block passes: exactly one R1 finding.
    assert_eq!(
        stdout.matches("[safety-comment]").count(),
        1,
        "SAFETY-commented unsafe must not fire: {stdout}"
    );
}

#[test]
fn violating_fixture_trips_r4_in_core_paths() {
    let out = Command::new(lint_bin())
        .current_dir(repo_root())
        .arg("crates/lint/fixtures/minimpi/unwrap.rs")
        .output()
        .expect("lint binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "core-path fixture must fail lint");
    // Two findings (unwrap + expect); the cfg(test) unwrap is exempt.
    assert_eq!(
        stdout.matches("[no-unwrap-core]").count(),
        2,
        "exactly the two non-test sites fire: {stdout}"
    );
}

#[test]
fn violating_fixture_trips_r4_in_staging_paths() {
    // `glean` (with `science` and `adios`) joined the R4 crate list
    // when the staging broker landed — the rule must fire there too.
    let out = Command::new(lint_bin())
        .current_dir(repo_root())
        .arg("crates/lint/fixtures/glean/unwrap.rs")
        .output()
        .expect("lint binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "staging-path fixture must fail lint");
    assert_eq!(
        stdout.matches("[no-unwrap-core]").count(),
        2,
        "exactly the two non-test sites fire: {stdout}"
    );
}

#[test]
fn violating_fixture_trips_r4_in_query_paths() {
    // `query` joined the R4 crate list with the obligation lint — the
    // interactive endpoint is steering-correctness core too.
    let out = Command::new(lint_bin())
        .current_dir(repo_root())
        .arg("crates/lint/fixtures/query/unwrap.rs")
        .output()
        .expect("lint binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "query-path fixture must fail lint");
    assert_eq!(
        stdout.matches("[no-unwrap-core]").count(),
        2,
        "exactly the two non-test sites fire: {stdout}"
    );
}

#[test]
fn violating_fixture_trips_r6_obligation_pairing() {
    let out = Command::new(lint_bin())
        .current_dir(repo_root())
        .arg("crates/lint/fixtures/query/obligation.rs")
        .output()
        .expect("lint binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "obligation fixture must fail lint");
    // One finding per leg: unbound publish, offload without a drain
    // path, join without leave. The paired twins and the cfg(test)
    // region stay silent.
    assert_eq!(
        stdout.matches("[obligation]").count(),
        3,
        "exactly the three unpaired sites fire: {stdout}"
    );
    assert!(stdout.contains("publish_dataset"), "{stdout}");
    assert!(stdout.contains("enable_offload"), "{stdout}");
    assert!(stdout.contains("leave"), "{stdout}");
}

#[test]
fn violating_fixture_trips_r5_outside_datamodel() {
    let out = Command::new(lint_bin())
        .current_dir(repo_root())
        .arg("crates/lint/fixtures/sensei/raw_slice.rs")
        .output()
        .expect("lint binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "raw-slice fixture must fail lint");
    // Two findings (typed_slice + turbofish component_slice); the
    // cfg(test) uses are exempt.
    assert_eq!(
        stdout.matches("[space-checked-access]").count(),
        2,
        "exactly the two non-test sites fire: {stdout}"
    );
}

#[test]
fn datamodel_keeps_its_raw_accessors_under_r5() {
    // The raw accessors are implemented (and self-tested) inside
    // `datamodel`; the rule must not fire on the defining crate.
    let out = Command::new(lint_bin())
        .current_dir(repo_root())
        .arg("crates/datamodel/src/array.rs")
        .arg("crates/datamodel/src/attributes.rs")
        .output()
        .expect("lint binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("[space-checked-access]"),
        "R5 must exempt datamodel: {stdout}"
    );
}

#[test]
fn default_run_skips_fixtures_and_passes_workspace() {
    let out = Command::new(lint_bin())
        .current_dir(repo_root())
        .output()
        .expect("lint binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "workspace must be lint-clean (fixtures skipped): {stdout}"
    );
    assert!(stdout.contains("clean"), "summary line present: {stdout}");
}
